(* Wire-codec properties: every protocol message round-trips through the
   binary codec bit-exactly, and decoding is total — truncated, mutated,
   or random byte strings must produce [Error], never an exception.  The
   adversarial half is what the network runtime's robustness rests on: a
   Byzantine server owns every byte it sends us. *)

open Core

(* ----- structural equality (Messages.t has no [equal]) ----------------- *)

let map_equal = Ints.Map.equal Int.equal

let msg_equal (a : Messages.t) (b : Messages.t) =
  match (a, b) with
  | Pw { ts; pw; w }, Pw { ts = ts'; pw = pw'; w = w' }
  | W { ts; pw; w }, W { ts = ts'; pw = pw'; w = w' } ->
      ts = ts' && Tsval.equal pw pw' && Wtuple.equal w w'
  | Pw_ack { ts; tsr }, Pw_ack { ts = ts'; tsr = tsr' } ->
      ts = ts' && map_equal tsr tsr'
  | W_ack { ts }, W_ack { ts = ts' } -> ts = ts'
  | Read1 { tsr; from_ts }, Read1 { tsr = tsr'; from_ts = f' }
  | Read2 { tsr; from_ts }, Read2 { tsr = tsr'; from_ts = f' } ->
      tsr = tsr' && from_ts = f'
  | Read1_ack { tsr; pw; w }, Read1_ack { tsr = tsr'; pw = pw'; w = w' }
  | Read2_ack { tsr; pw; w }, Read2_ack { tsr = tsr'; pw = pw'; w = w' } ->
      tsr = tsr' && Tsval.equal pw pw' && Wtuple.equal w w'
  | Read1_ack_h { tsr; history }, Read1_ack_h { tsr = tsr'; history = h' }
  | Read2_ack_h { tsr; history }, Read2_ack_h { tsr = tsr'; history = h' } ->
      tsr = tsr' && History_store.equal history h'
  | _ -> false

(* Abd.msg is ints and Value.t (a plain variant): polymorphic equality
   is structural. *)
let abd_equal (a : Baseline.Abd.msg) (b : Baseline.Abd.msg) = a = b

(* ----- generators ------------------------------------------------------- *)

(* Timestamps in live runs are small non-negatives, but the varint layer
   must round-trip the full int range — mix both. *)
let gen_int =
  QCheck.Gen.(
    oneof
      [
        0 -- 12;
        int;
        oneofl [ 0; 1; -1; 63; 64; 0x7f; 0x80; 0xffff; max_int; min_int ];
      ])

let gen_value =
  QCheck.Gen.(
    oneof [ return Value.bottom; map Value.v (string_size (0 -- 24)) ])

let gen_tsval =
  QCheck.Gen.(map2 (fun ts v -> Tsval.make ~ts ~v) gen_int gen_value)

let gen_row =
  QCheck.Gen.(
    map
      (fun l -> List.fold_left (fun m (j, ts) -> Ints.Map.add j ts m) Ints.Map.empty l)
      (list_size (0 -- 4) (pair (1 -- 5) gen_int)))

let gen_matrix =
  QCheck.Gen.(
    map
      (fun rows ->
        List.fold_left
          (fun m (i, row) -> Tsr_matrix.set_row m ~obj:i row)
          Tsr_matrix.empty rows)
      (list_size (0 -- 4) (pair (1 -- 6) gen_row)))

let gen_wtuple =
  QCheck.Gen.(
    map2 (fun tsval tsrarray -> Wtuple.make ~tsval ~tsrarray) gen_tsval
      gen_matrix)

let gen_history =
  QCheck.Gen.(
    map
      (fun entries ->
        List.fold_left
          (fun h (ts, pw, w) -> History_store.set h ~ts { History_store.pw; w })
          History_store.init entries)
      (list_size (0 -- 4) (triple (0 -- 12) gen_tsval (option gen_wtuple))))

let gen_msg =
  QCheck.Gen.(
    oneof
      [
        map3 (fun ts pw w -> Messages.Pw { ts; pw; w }) gen_int gen_tsval gen_wtuple;
        map2 (fun ts tsr -> Messages.Pw_ack { ts; tsr }) gen_int gen_row;
        map3 (fun ts pw w -> Messages.W { ts; pw; w }) gen_int gen_tsval gen_wtuple;
        map (fun ts -> Messages.W_ack { ts }) gen_int;
        map2 (fun tsr from_ts -> Messages.Read1 { tsr; from_ts }) gen_int gen_int;
        map2 (fun tsr from_ts -> Messages.Read2 { tsr; from_ts }) gen_int gen_int;
        map3 (fun tsr pw w -> Messages.Read1_ack { tsr; pw; w }) gen_int gen_tsval gen_wtuple;
        map3 (fun tsr pw w -> Messages.Read2_ack { tsr; pw; w }) gen_int gen_tsval gen_wtuple;
        map2 (fun tsr history -> Messages.Read1_ack_h { tsr; history }) gen_int gen_history;
        map2 (fun tsr history -> Messages.Read2_ack_h { tsr; history }) gen_int gen_history;
      ])

let gen_abd =
  QCheck.Gen.(
    oneof
      [
        map2 (fun ts v -> Baseline.Abd.Write_req { ts; v }) gen_int gen_value;
        map (fun ts -> Baseline.Abd.Write_ack { ts }) gen_int;
        map (fun rid -> Baseline.Abd.Read_req { rid }) gen_int;
        map3 (fun rid ts v -> Baseline.Abd.Read_ack { rid; ts; v }) gen_int gen_int gen_value;
        map3 (fun rid ts v -> Baseline.Abd.Write_back { rid; ts; v }) gen_int gen_int gen_value;
        map (fun rid -> Baseline.Abd.Write_back_ack { rid }) gen_int;
      ])

let arb_msg = QCheck.make ~print:Messages.info gen_msg

let arb_abd = QCheck.make ~print:Baseline.Abd.Regular.msg_info gen_abd

(* ----- round-trips ------------------------------------------------------ *)

let roundtrip_messages =
  QCheck.Test.make ~name:"Messages.t round-trips bit-exactly" ~count:1000
    arb_msg (fun m ->
      let bytes = Net.Codec.encode_msg Net.Codec.messages m in
      match Net.Codec.decode_msg Net.Codec.messages bytes with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok m' ->
          msg_equal m m'
          && String.equal bytes (Net.Codec.encode_msg Net.Codec.messages m'))

let roundtrip_abd =
  QCheck.Test.make ~name:"Abd.msg round-trips bit-exactly" ~count:1000 arb_abd
    (fun m ->
      let bytes = Net.Codec.encode_msg Net.Codec.abd m in
      match Net.Codec.decode_msg Net.Codec.abd bytes with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok m' ->
          abd_equal m m'
          && String.equal bytes (Net.Codec.encode_msg Net.Codec.abd m'))

let payload_of_frame codec f =
  let wire = Net.Codec.encode_frame codec f in
  String.sub wire 4 (String.length wire - 4)

let frame_equal eq a b =
  match (a, b) with
  | ( Net.Codec.Hello { proto; sender; obj },
      Net.Codec.Hello { proto = p'; sender = s'; obj = o' } ) ->
      proto = p' && sender = s' && obj = o'
  | Hello_ack { proto; obj }, Hello_ack { proto = p'; obj = o' } ->
      proto = p' && obj = o'
  | Msg m, Msg m' -> eq m m'
  | ( Msg_from { sender; msg },
      Msg_from { sender = s'; msg = m' } ) ->
      sender = s' && eq msg m'
  | ( Msg_key { key; sender; msg },
      Msg_key { key = k'; sender = s'; msg = m' } ) ->
      key = k' && sender = s' && eq msg m'
  | Err e, Err e' -> e = e'
  | _ -> false

(* Key ids are nonnegative by construction (the decoder rejects the
   rest); stress the varint width boundaries up to max_int. *)
let gen_key =
  QCheck.Gen.(
    oneof
      [
        0 -- 12;
        oneofl [ 0; 1; 63; 64; 0x7f; 0x80; 0xffff; 1_000_000; max_int ];
      ])

let gen_frame =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun proto sender obj -> Net.Codec.Hello { proto; sender; obj })
          (string_size (0 -- 12))
          (string_size (0 -- 6))
          (0 -- 8);
        map2
          (fun proto obj -> Net.Codec.Hello_ack { proto; obj })
          (string_size (0 -- 12))
          (0 -- 8);
        map (fun m -> Net.Codec.Msg m) gen_msg;
        map2
          (fun sender msg -> Net.Codec.Msg_from { sender; msg })
          (string_size (0 -- 6))
          gen_msg;
        map3
          (fun key sender msg -> Net.Codec.Msg_key { key; sender; msg })
          gen_key
          (string_size (0 -- 6))
          gen_msg;
        map (fun e -> Net.Codec.Err e) (string_size (0 -- 40));
      ])

let arb_frame =
  QCheck.make
    ~print:(Net.Codec.frame_info ~msg_info:Messages.info)
    gen_frame

let roundtrip_frames =
  QCheck.Test.make ~name:"frames round-trip through the payload decoder"
    ~count:500 arb_frame (fun f ->
      match
        Net.Codec.decode_payload Net.Codec.messages
          (payload_of_frame Net.Codec.messages f)
      with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok f' -> frame_equal msg_equal f f')

(* ----- keyed frames (ISSUE 9) ------------------------------------------- *)

(* The demux peeks kind/sender/key straight off the raw payload without
   a full decode; for key-tagged frames all three must agree with what a
   full decode returns. *)
let keyed_peek_agrees =
  QCheck.Test.make
    ~name:"peek_kind/peek_sender/peek_key agree with full decode on Msg_key"
    ~count:500
    QCheck.(
      make
        Gen.(
          map3
            (fun key sender msg -> Net.Codec.Msg_key { key; sender; msg })
            gen_key
            (string_size (0 -- 6))
            gen_msg))
    (fun f ->
      let key, sender =
        match f with
        | Net.Codec.Msg_key { key; sender; _ } -> (key, sender)
        | _ -> assert false
      in
      let payload = payload_of_frame Net.Codec.messages f in
      Net.Codec.peek_kind payload = Some `Msg_key
      && Net.Codec.peek_sender payload = Some sender
      && Net.Codec.peek_key payload = Some key)

(* Back-compat: untagged frames are unchanged on the wire — they carry
   no key id at all ("key 0" is the receiver's convention, not a wire
   byte), so peek_key must be None and they must keep round-tripping. *)
let untagged_frames_unchanged =
  QCheck.Test.make
    ~name:"untagged Msg/Msg_from frames carry no key and still round-trip"
    ~count:500
    QCheck.(
      make
        Gen.(
          oneof
            [
              map (fun m -> Net.Codec.Msg m) gen_msg;
              map2
                (fun sender msg -> Net.Codec.Msg_from { sender; msg })
                (string_size (0 -- 6))
                gen_msg;
            ]))
    (fun f ->
      let payload = payload_of_frame Net.Codec.messages f in
      Net.Codec.peek_key payload = None
      &&
      match Net.Codec.decode_payload Net.Codec.messages payload with
      | Ok f' -> frame_equal msg_equal f f'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let negative_key_rejected () =
  (* a Byzantine sender can put any varint in the key slot; negative key
     ids must be a clean decode error, not a table index *)
  let f =
    Net.Codec.Msg_key
      { key = -1; sender = "w"; msg = Messages.W_ack { ts = 1 } }
  in
  match
    Net.Codec.decode_payload Net.Codec.messages
      (payload_of_frame Net.Codec.messages f)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative key id accepted"

(* ----- adversarial inputs ----------------------------------------------- *)

let never_raises_or_ok f =
  match f () with Ok _ | Error _ -> true | exception _ -> false

let truncation_messages =
  QCheck.Test.make
    ~name:"every strict prefix of a message decodes to Error, never raises"
    ~count:300 arb_msg (fun m ->
      let bytes = Net.Codec.encode_msg Net.Codec.messages m in
      let ok = ref true in
      for len = 0 to String.length bytes - 1 do
        (match
           Net.Codec.decode_msg Net.Codec.messages (String.sub bytes 0 len)
         with
        | Ok _ -> ok := false (* a strict prefix must not decode *)
        | Error _ -> ()
        | exception _ -> ok := false);
        (* trailing garbage is equally rejected by the strict decoder *)
        match Net.Codec.decode_msg Net.Codec.messages (bytes ^ "\x00") with
        | Ok _ -> ok := false
        | Error _ -> ()
        | exception _ -> ok := false
      done;
      !ok)

let truncation_frames =
  QCheck.Test.make
    ~name:"every strict prefix of a frame payload decodes to Error"
    ~count:200 arb_frame (fun f ->
      let payload = payload_of_frame Net.Codec.messages f in
      let ok = ref true in
      for len = 0 to String.length payload - 1 do
        match
          Net.Codec.decode_payload Net.Codec.messages
            (String.sub payload 0 len)
        with
        | Ok _ -> ok := false
        | Error _ -> ()
        | exception _ -> ok := false
      done;
      !ok)

let arb_garbage =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "<%d bytes>" (String.length s))
    QCheck.Gen.(string_size (0 -- 200))

let garbage_decode =
  QCheck.Test.make ~name:"random bytes never make the decoders raise"
    ~count:1000 arb_garbage (fun s ->
      never_raises_or_ok (fun () ->
          Net.Codec.decode_msg Net.Codec.messages s)
      && never_raises_or_ok (fun () -> Net.Codec.decode_msg Net.Codec.abd s)
      && never_raises_or_ok (fun () ->
             Net.Codec.decode_payload Net.Codec.messages s))

let mutation_decode =
  QCheck.Test.make
    ~name:"single-byte mutations of a valid message never raise" ~count:300
    QCheck.(pair arb_msg (pair small_nat small_nat))
    (fun (m, (pos, delta)) ->
      let bytes = Bytes.of_string (Net.Codec.encode_msg Net.Codec.messages m) in
      if Bytes.length bytes = 0 then true
      else begin
        let pos = pos mod Bytes.length bytes in
        Bytes.set_uint8 bytes pos
          ((Bytes.get_uint8 bytes pos + 1 + delta) land 0xff);
        never_raises_or_ok (fun () ->
            Net.Codec.decode_msg Net.Codec.messages (Bytes.to_string bytes))
      end)

(* ----- incremental reader ----------------------------------------------- *)

let feed_string r s =
  Net.Codec.Reader.feed r (Bytes.of_string s) 0 (String.length s)

let reader_reassembles =
  QCheck.Test.make
    ~name:"Reader yields the same frames whatever the chunk boundaries"
    ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 5) arb_frame) (list small_nat))
    (fun (frames, cuts) ->
      let wire =
        String.concat ""
          (List.map (Net.Codec.encode_frame Net.Codec.messages) frames)
      in
      let r = Net.Codec.Reader.create () in
      (* split [wire] at pseudo-random positions derived from [cuts] *)
      let pos = ref 0 in
      List.iter
        (fun c ->
          let remaining = String.length wire - !pos in
          if remaining > 0 then begin
            let len = 1 + (c mod remaining) in
            feed_string r (String.sub wire !pos len);
            pos := !pos + len
          end)
        cuts;
      feed_string r (String.sub wire !pos (String.length wire - !pos));
      let rec drain acc =
        match Net.Codec.Reader.next Net.Codec.messages r with
        | Ok (`Frame f) -> drain (f :: acc)
        | Ok `Awaiting -> List.rev acc
        | Error e -> QCheck.Test.fail_reportf "reader error: %s" e
      in
      let got = drain [] in
      List.length got = List.length frames
      && List.for_all2 (frame_equal msg_equal) frames got
      && Net.Codec.Reader.pending r = 0)

let reader_survives_garbage =
  QCheck.Test.make ~name:"Reader never raises on a garbage stream"
    ~count:500 arb_garbage (fun s ->
      let r = Net.Codec.Reader.create () in
      feed_string r s;
      let rec drain budget =
        if budget = 0 then true
        else
          match Net.Codec.Reader.next Net.Codec.messages r with
          | Ok (`Frame _) -> drain (budget - 1)
          | Ok `Awaiting | Error _ -> true
          | exception _ -> false
      in
      drain 64)

(* ----- frame batching (ISSUE 5) ------------------------------------------ *)

(* Frames are length-prefixed and self-delimiting, so appending N frames
   to one scratch and writing them in a single flush must put exactly
   the same bytes on the wire as N separate encodes — and a Reader fed
   the batched bytes must yield the same frames.  This is the whole
   wire-compatibility argument for batching. *)
let batched_equals_unbatched =
  QCheck.Test.make
    ~name:"batched framing is byte-identical to unbatched and decodes the same"
    ~count:300
    QCheck.(list_of_size Gen.(0 -- 8) arb_frame)
    (fun frames ->
      let unbatched =
        String.concat ""
          (List.map (Net.Codec.encode_frame Net.Codec.messages) frames)
      in
      let out = Net.Codec.Out.create () in
      List.iter (Net.Codec.encode_frame_into Net.Codec.messages out) frames;
      let batched = Net.Codec.Out.contents out in
      if not (String.equal batched unbatched) then
        QCheck.Test.fail_reportf "batched bytes differ (%d vs %d bytes)"
          (String.length batched) (String.length unbatched)
      else begin
        let r = Net.Codec.Reader.create () in
        feed_string r batched;
        let rec drain acc =
          match Net.Codec.Reader.next Net.Codec.messages r with
          | Ok (`Frame f) -> drain (f :: acc)
          | Ok `Awaiting -> List.rev acc
          | Error e -> QCheck.Test.fail_reportf "reader error: %s" e
        in
        let got = drain [] in
        List.length got = List.length frames
        && List.for_all2 (frame_equal msg_equal) frames got
        && Net.Codec.Reader.pending r = 0
      end)

(* The scratch survives clears: reusing one [Out] across batches must
   not leak bytes between them. *)
let out_reuse_is_clean =
  QCheck.Test.make ~name:"Out scratch reuse leaks nothing across clears"
    ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 4) arb_frame) (list_of_size Gen.(1 -- 4) arb_frame))
    (fun (first, second) ->
      let out = Net.Codec.Out.create () in
      List.iter (Net.Codec.encode_frame_into Net.Codec.messages out) first;
      Net.Codec.Out.clear out;
      List.iter (Net.Codec.encode_frame_into Net.Codec.messages out) second;
      String.equal
        (Net.Codec.Out.contents out)
        (String.concat ""
           (List.map (Net.Codec.encode_frame Net.Codec.messages) second)))

let reader_shrinks_after_large_frame () =
  (* a single huge frame must not pin the reader's peak capacity: once
     it drains, the buffer drops back to a pool-class size *)
  let big = Net.Codec.Err (String.make 200_000 'x') in
  let small = Net.Codec.Err "tiny" in
  let r = Net.Codec.Reader.create () in
  let baseline = Net.Codec.Reader.capacity r in
  feed_string r (Net.Codec.encode_frame Net.Codec.messages big);
  Alcotest.(check bool) "buffer grew for the large frame" true
    (Net.Codec.Reader.capacity r > baseline);
  (match Net.Codec.Reader.next Net.Codec.messages r with
  | Ok (`Frame (Net.Codec.Err s)) ->
      Alcotest.(check int) "large frame intact" 200_000 (String.length s)
  | _ -> Alcotest.fail "large frame did not decode");
  (* the shrink happens on the next extraction once the buffer is idle *)
  feed_string r (Net.Codec.encode_frame Net.Codec.messages small);
  (match Net.Codec.Reader.next Net.Codec.messages r with
  | Ok (`Frame (Net.Codec.Err s)) -> Alcotest.(check string) "small frame intact" "tiny" s
  | _ -> Alcotest.fail "small frame did not decode");
  Alcotest.(check bool)
    (Printf.sprintf "capacity back to pool class (%d)"
       (Net.Codec.Reader.capacity r))
    true
    (Net.Codec.Reader.capacity r <= 65536);
  (* and the shrunken reader still works *)
  feed_string r (Net.Codec.encode_frame Net.Codec.messages small);
  match Net.Codec.Reader.next Net.Codec.messages r with
  | Ok (`Frame (Net.Codec.Err s)) -> Alcotest.(check string) "still decodes" "tiny" s
  | _ -> Alcotest.fail "reader broken after shrink"

(* ----- deterministic edge cases ----------------------------------------- *)

let oversized_rejected () =
  (* a length prefix beyond max_frame must be refused before allocation *)
  let b = Bytes.create 8 in
  Bytes.set_int32_be b 0 (Int32.of_int (Net.Codec.max_frame + 1));
  let r = Net.Codec.Reader.create () in
  Net.Codec.Reader.feed r b 0 8;
  match Net.Codec.Reader.next Net.Codec.messages r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

let bad_magic_rejected () =
  match Net.Codec.decode_payload Net.Codec.messages "XX\x01\x03boom" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted"

let bad_version_rejected () =
  let payload = payload_of_frame Net.Codec.messages (Net.Codec.Err "x") in
  let b = Bytes.of_string payload in
  Bytes.set_uint8 b 2 (Net.Codec.version + 1);
  match Net.Codec.decode_payload Net.Codec.messages (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted"

let wrong_codec_is_error () =
  (* an ABD message through the core codec: must be a clean error *)
  let bytes =
    Net.Codec.encode_msg Net.Codec.abd (Baseline.Abd.Read_req { rid = 3 })
  in
  match Net.Codec.decode_msg Net.Codec.messages bytes with
  | Error _ -> ()
  | Ok m -> Alcotest.failf "cross-protocol decode produced %s" (Messages.info m)

let suite =
  ( "net_codec",
    [
      QCheck_alcotest.to_alcotest roundtrip_messages;
      QCheck_alcotest.to_alcotest roundtrip_abd;
      QCheck_alcotest.to_alcotest roundtrip_frames;
      QCheck_alcotest.to_alcotest keyed_peek_agrees;
      QCheck_alcotest.to_alcotest untagged_frames_unchanged;
      Alcotest.test_case "negative key id rejected" `Quick negative_key_rejected;
      QCheck_alcotest.to_alcotest truncation_messages;
      QCheck_alcotest.to_alcotest truncation_frames;
      QCheck_alcotest.to_alcotest garbage_decode;
      QCheck_alcotest.to_alcotest mutation_decode;
      QCheck_alcotest.to_alcotest reader_reassembles;
      QCheck_alcotest.to_alcotest reader_survives_garbage;
      QCheck_alcotest.to_alcotest batched_equals_unbatched;
      QCheck_alcotest.to_alcotest out_reuse_is_clean;
      Alcotest.test_case "Reader shrinks after a large frame" `Quick
        reader_shrinks_after_large_frame;
      Alcotest.test_case "oversized length prefix rejected" `Quick oversized_rejected;
      Alcotest.test_case "bad magic rejected" `Quick bad_magic_rejected;
      Alcotest.test_case "future version rejected" `Quick bad_version_rejected;
      Alcotest.test_case "cross-protocol bytes are a clean error" `Quick wrong_codec_is_error;
    ] )
