(* Protocol conformance: generic laws every Protocol_intf.S implementation
   must satisfy, checked uniformly across the whole protocol zoo.

   Laws (fault-free runs at each protocol's design configuration):
   - liveness: every scheduled operation completes;
   - round bounds: writes and reads within the protocol's advertised
     maximum;
   - safety of the history (and regularity where advertised);
   - determinism: identical (seed, schedule) gives identical outcomes;
   - serial reads after a write return that write's value. *)

type spec =
  | Spec : {
      name : string;
      proto : (module Core.Protocol_intf.S with type msg = 'm);
      cfg : Quorum.Config.t;
      max_write_rounds : int;
      max_read_rounds : int;
      regular : bool;  (* claims regular (or stronger) semantics *)
    }
      -> spec

let specs =
  [
    Spec
      {
        name = "safe";
        proto = (module Core.Proto_safe);
        cfg = Quorum.Config.optimal ~t:1 ~b:1;
        max_write_rounds = 2;
        max_read_rounds = 2;
        regular = false;
      };
    Spec
      {
        name = "safe(t=2,b=2)";
        proto = (module Core.Proto_safe);
        cfg = Quorum.Config.optimal ~t:2 ~b:2;
        max_write_rounds = 2;
        max_read_rounds = 2;
        regular = false;
      };
    Spec
      {
        name = "regular";
        proto = (module Core.Proto_regular.Plain);
        cfg = Quorum.Config.optimal ~t:1 ~b:1;
        max_write_rounds = 2;
        max_read_rounds = 2;
        regular = true;
      };
    Spec
      {
        name = "regular-opt";
        proto = (module Core.Proto_regular.Optimized);
        cfg = Quorum.Config.optimal ~t:2 ~b:1;
        max_write_rounds = 2;
        max_read_rounds = 2;
        regular = true;
      };
    Spec
      {
        name = "regular-gc";
        proto =
          (module Core.Proto_regular_gc.Make (struct
            let readers = 2
          end));
        cfg = Quorum.Config.optimal ~t:1 ~b:1;
        max_write_rounds = 2;
        max_read_rounds = 2;
        regular = true;
      };
    Spec
      {
        name = "abd";
        proto = (module Baseline.Abd.Regular);
        cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0;
        max_write_rounds = 1;
        max_read_rounds = 1;
        regular = true;
      };
    Spec
      {
        name = "abd-atomic";
        proto = (module Baseline.Abd.Atomic);
        cfg = Quorum.Config.make_exn ~s:5 ~t:2 ~b:0;
        max_write_rounds = 1;
        max_read_rounds = 2;
        regular = true;
      };
    Spec
      {
        name = "nonmod";
        proto = (module Baseline.Nonmod);
        cfg = Quorum.Config.optimal ~t:1 ~b:1;
        max_write_rounds = 2;
        max_read_rounds = 3;
        regular = false;
      };
    Spec
      {
        name = "auth";
        proto = (module Baseline.Auth);
        cfg = Quorum.Config.optimal ~t:1 ~b:1;
        max_write_rounds = 1;
        max_read_rounds = 1;
        regular = true;
      };
    Spec
      {
        name = "fast-safe";
        proto = (module Baseline.Fast_safe);
        cfg = Quorum.Config.make_exn ~s:5 ~t:1 ~b:1;
        max_write_rounds = 1;
        max_read_rounds = 1;
        regular = false;
      };
    Spec
      {
        name = "naive-fast (fault-free only)";
        proto = (module Baseline.Naive_fast);
        cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
        max_write_rounds = 1;
        max_read_rounds = 1;
        regular = true;
      };
  ]

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "c1"));
    (100, Core.Schedule.Read { reader = 1 });
    (150, Core.Schedule.Read { reader = 2 });
    (200, Core.Schedule.Write (Core.Value.v "c2"));
    (300, Core.Schedule.Read { reader = 1 });
    (320, Core.Schedule.Read { reader = 2 });
    (400, Core.Schedule.Write (Core.Value.v "c3"));
    (500, Core.Schedule.Read { reader = 2 });
  ]

let run_spec (Spec { name; proto = (module P); cfg; _ }) ~seed =
  let module Sc = Core.Scenario.Make (P) in
  ignore name;
  let rep =
    Sc.run ~cfg ~seed
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
      ~faults:Sc.no_faults schedule
  in
  ( rep.history,
    List.map
      (fun (o : Sc.outcome) ->
        (o.op, o.invoked_at, o.completed_at, o.rounds, o.result))
      rep.outcomes )

let test_laws (Spec s as spec) () =
  let _history, outcomes = run_spec spec ~seed:5 in
  Alcotest.(check int)
    (s.name ^ ": all operations complete")
    (List.length schedule) (List.length outcomes);
  List.iter
    (fun (op, _, _, rounds, result) ->
      match op with
      | Core.Schedule.Write _ ->
          Alcotest.(check bool)
            (s.name ^ ": write round bound")
            true
            (rounds >= 1 && rounds <= s.max_write_rounds)
      | Core.Schedule.Read _ ->
          Alcotest.(check bool)
            (s.name ^ ": read round bound")
            true
            (rounds >= 0 && rounds <= s.max_read_rounds);
          Alcotest.(check bool) (s.name ^ ": read has a result") true
            (result <> None))
    outcomes;
  let history, _ = run_spec spec ~seed:5 in
  Alcotest.(check bool)
    (s.name ^ ": history safe")
    true
    (Histories.Checks.is_safe ~equal:String.equal history);
  if s.regular then
    Alcotest.(check bool)
      (s.name ^ ": history regular")
      true
      (Histories.Checks.is_regular ~equal:String.equal history)

let test_determinism (Spec s as spec) () =
  Alcotest.(check bool)
    (s.name ^ ": deterministic")
    true
    (run_spec spec ~seed:9 = run_spec spec ~seed:9)

let test_serial_read_sees_write (Spec s as spec) () =
  let _, outcomes = run_spec spec ~seed:11 in
  (* the final read at t=500 follows the completed c3 write *)
  match List.rev outcomes with
  | (Core.Schedule.Read _, _, _, _, Some v) :: _ ->
      Alcotest.(check bool)
        (s.name ^ ": last read sees last write")
        true
        (Core.Value.equal v (Core.Value.v "c3"))
  | _ -> Alcotest.fail (s.name ^ ": last operation should be a completed read")

let suite =
  ( "conformance",
    List.concat_map
      (fun (Spec s as spec) ->
        [
          Alcotest.test_case (s.name ^ " laws") `Quick (test_laws spec);
          Alcotest.test_case (s.name ^ " determinism") `Quick
            (test_determinism spec);
          Alcotest.test_case (s.name ^ " serial read") `Quick
            (test_serial_read_sees_write spec);
        ])
      specs )
