(* Cross-backend chaos: the same Fault.Plan values driving the simulator
   and a live socket cluster (ISSUE 6).

   The acceptance bar: one plan value runs unchanged on both backends
   and yields survival matrices in the same schema, and a counterexample
   found against real sockets replays deterministically in the simulator
   — the shrunk witness is byte-identical across two replays.  Plus the
   Cluster.crash/restart edge cases: double-crash, restart-while-alive
   as a structured error, wiped restarts observably losing state, a
   crash inside an inflight=16 pipelined window, and beyond-t crashes
   timing out (with op.reconnects counted) then recovering. *)

let cfg4 = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0

let ok_exn what = function
  | Ok o -> o
  | Error e -> Alcotest.failf "%s failed: %s" what e

let value_of (o : Net.Client.outcome) =
  match o.value with
  | Some v -> Core.Value.to_string v
  | None -> "<none>"

(* Fast live opts for tests: tiny ticks, still patient enough that
   within-budget plans never time operations out. *)
let fast_live =
  {
    Net.Live.default_opts with
    tick_us = 200;
    client = { Net.Client.deadline = 0.2; retries = 5; backoff = 0.02 };
  }

(* Impatient opts for runs that are SUPPOSED to time out. *)
let impatient =
  {
    Net.Live.default_opts with
    tick_us = 100;
    client = { Net.Client.deadline = 0.05; retries = 1; backoff = 0.01 };
  }

(* ----- injector dispatch ------------------------------------------------- *)

let injector_dispatch_is_total () =
  (* Every Plan.action constructor must reach exactly one S method. *)
  let module Rec = struct
    type t = (string, int) Hashtbl.t

    let name = "recording"

    let hit t k = Hashtbl.replace t k (1 + Option.value ~default:0 (Hashtbl.find_opt t k))

    let byzantine t ~obj:_ ~kind:_ = hit t "byz"

    let switch t ~obj:_ ~at:_ ~kind:_ = hit t "switch"

    let crash t ~obj:_ ~at:_ = hit t "crash"

    let recover t ~obj:_ ~at:_ ~wipe:_ = hit t "recover"

    let block t ~src:_ ~dst:_ ~from_:_ ~until:_ = hit t "block"

    let isolate t ~obj:_ ~from_:_ ~until:_ = hit t "isolate"

    let duplicate t ~src:_ ~dst:_ ~copies:_ ~from_:_ ~until:_ = hit t "dup"
  end in
  let plan =
    {
      Fault.Plan.horizon = 100;
      actions =
        [
          Byz { obj = 1; kind = Fault.Plan.Mute };
          Switch { obj = 2; at = 10; kind = Fault.Plan.Garbage };
          Crash { obj = 3; at = 20 };
          Recover { obj = 3; at = 40; wipe = true };
          Block { src = Fault.Plan.W; dst = Fault.Plan.O 1; from_ = 5; until = 9 };
          Isolate { obj = 2; from_ = 50; until = 60 };
          Duplicate
            {
              src = Fault.Plan.O 1;
              dst = Fault.Plan.R 1;
              copies = 2;
              from_ = 1;
              until = 99;
            };
        ];
    }
  in
  let seen = Hashtbl.create 8 in
  Fault.Injector.apply (module Rec) seen plan;
  List.iter
    (fun k ->
      Alcotest.(check int) (k ^ " dispatched once") 1
        (Option.value ~default:0 (Hashtbl.find_opt seen k)))
    [ "byz"; "switch"; "crash"; "recover"; "block"; "isolate"; "dup" ]

(* ----- codec peeking ----------------------------------------------------- *)

let codec_peek_helpers () =
  let payload frame =
    let s = Net.Codec.encode_frame Net.Codec.messages frame in
    String.sub s 4 (String.length s - 4)
  in
  let hello =
    payload (Net.Codec.Hello { proto = "core"; sender = "r7"; obj = 3 })
  in
  Alcotest.(check bool) "hello kind" true (Net.Codec.peek_kind hello = Some `Hello);
  Alcotest.(check (option string)) "hello sender" (Some "r7")
    (Net.Codec.peek_sender hello);
  let ack = payload (Net.Codec.Hello_ack { proto = "core"; obj = 3 }) in
  Alcotest.(check bool) "ack kind" true (Net.Codec.peek_kind ack = Some `Hello_ack);
  Alcotest.(check (option string)) "ack has no sender" None
    (Net.Codec.peek_sender ack);
  Alcotest.(check (option string)) "garbage is rejected" None
    (Net.Codec.peek_sender "\x00\x01\x02")

(* ----- Cluster.crash/restart edge cases ---------------------------------- *)

let restart_alive_is_structured_error () =
  let c = Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      (match Net.Cluster.restart c 2 with
      | Error (`Still_alive 2) -> ()
      | Ok () -> Alcotest.fail "restart of a live server must not succeed"
      | Error (`Still_alive i) -> Alcotest.failf "wrong index %d" i);
      (match Net.Cluster.restart_exn c 2 with
      | () -> Alcotest.fail "restart_exn of a live server must raise"
      | exception Invalid_argument _ -> ());
      Net.Cluster.crash c 2;
      match Net.Cluster.restart c 2 with
      | Ok () -> ()
      | Error (`Still_alive _) -> Alcotest.fail "restart after crash must succeed")

let double_crash_is_idempotent () =
  let c = Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "d1")) in
      Net.Cluster.crash c 4;
      Net.Cluster.crash c 4;
      (* idempotent, and the quorum still answers *)
      let o = ok_exn "read with double-crashed minority" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "value" "d1" (value_of o);
      ok_exn "restart after double crash"
        (Result.map_error
           (fun (`Still_alive i) -> Printf.sprintf "still alive %d" i)
           (Net.Cluster.restart c 4)))

let wiped_restart_loses_state () =
  (* A single-object system (s = 1, t = b = 0) makes persistence
     directly observable: no quorum hides the wiped replica. *)
  let cfg1 = Quorum.Config.make_exn ~s:1 ~t:0 ~b:0 in
  let c = Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg:cfg1 ~readers:1 () in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write v1" (Net.Cluster.write c (Core.Value.v "v1")) in
      let o = ok_exn "read v1" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "before crash" "v1" (value_of o);
      Net.Cluster.crash c 1;
      ok_exn "wiped restart"
        (Result.map_error (fun _ -> "still alive") (Net.Cluster.restart ~wipe:true c 1));
      let o = ok_exn "read after wipe" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check bool) "wiped replica forgot v1" false (value_of o = "v1");
      let _ = ok_exn "write v2" (Net.Cluster.write c (Core.Value.v "v2")) in
      Net.Cluster.crash c 1;
      ok_exn "persisted restart"
        (Result.map_error (fun _ -> "still alive") (Net.Cluster.restart c 1));
      let o = ok_exn "read after persisted restart" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "persisted replica kept v2" "v2" (value_of o))

let crash_mid_pipelined_window () =
  let c =
    Net.Cluster.start
      ~opts:{ Net.Client.deadline = 0.5; retries = 8; backoff = 0.01 }
      ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "p1")) in
      (* Kill a server while the 16-wide window is in flight; t = 1, so
         every op must still complete. *)
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.02;
            Net.Cluster.crash c 3)
          ()
      in
      let results = Net.Cluster.read_pipelined c ~inflight:16 ~ops:200 in
      Thread.join killer;
      let failures =
        Array.to_list results
        |> List.filter_map (function Ok _ -> None | Error e -> Some e)
      in
      Alcotest.(check (list string)) "no failed ops across the crash" [] failures;
      ok_exn "restart after window"
        (Result.map_error (fun _ -> "still alive") (Net.Cluster.restart c 3));
      let equal = String.equal in
      Alcotest.(check int) "live history stays safe" 0
        (List.length (Histories.Checks.check_safety ~equal (Net.Cluster.history c))))

(* ----- fast reads under chaos (ISSUE 7) ---------------------------------- *)

let cfg_gc_slow = Quorum.Config.optimal ~t:1 ~b:1 (* S = 2t+b+1 = 4 *)

let cfg_gc_fast = Quorum.Config.make_exn ~s:5 ~t:1 ~b:1 (* S = 2t+2b+1 *)

(* Crash a base object while an inflight=16 window of fast reads is
   running at S = 2t+2b+1: the opportunistic round-1 decision must
   degrade (2 rounds at worst, the Fig. 6 fallback), never fail an op
   and never surface a value that violates safety or regularity. *)
let crash_mid_fast_read_window () =
  let c =
    Net.Cluster.start
      ~opts:{ Net.Client.deadline = 0.5; retries = 8; backoff = 0.01 }
      ~protocol:(Net.Protocols.regular_gc ~readers:1)
      ~cfg:cfg_gc_fast ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "f1")) in
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.02;
            Net.Cluster.crash c 3)
          ()
      in
      let results = Net.Cluster.read_pipelined c ~inflight:16 ~ops:200 in
      Thread.join killer;
      let outcomes =
        Array.to_list results
        |> List.map (function
             | Ok o -> o
             | Error e -> Alcotest.failf "fast read failed across crash: %s" e)
      in
      List.iter
        (fun (o : Net.Client.outcome) ->
          Alcotest.(check bool)
            (Printf.sprintf "reported rounds in {1,2} (got %d)" o.rounds)
            true
            (o.rounds = 1 || o.rounds = 2))
        outcomes;
      ok_exn "restart after window"
        (Result.map_error (fun _ -> "still alive") (Net.Cluster.restart c 3));
      let equal = String.equal in
      let h = Net.Cluster.history c in
      Alcotest.(check bool) "history safe across the crash" true
        (Histories.Checks.is_safe ~equal h);
      Alcotest.(check bool) "history regular across the crash" true
        (Histories.Checks.is_regular ~equal h))

(* Below the Proposition 1 bound (S = 2t+b+1 < 2t+2b+1) the gate must
   stay shut no matter what faults do: a 1-round read reported here
   would be a regularity hazard the checker cannot even see.  Crash and
   recover an object mid-window and require every read to report
   exactly 2 rounds. *)
let below_bound_never_one_round () =
  let c =
    Net.Cluster.start
      ~opts:{ Net.Client.deadline = 0.5; retries = 8; backoff = 0.01 }
      ~protocol:(Net.Protocols.regular_gc ~readers:1)
      ~cfg:cfg_gc_slow ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "s1")) in
      let killer =
        Thread.create
          (fun () ->
            Thread.delay 0.02;
            Net.Cluster.crash c 2;
            Thread.delay 0.05;
            Net.Cluster.restart_exn c 2)
          ()
      in
      let results = Net.Cluster.read_pipelined c ~inflight:16 ~ops:200 in
      Thread.join killer;
      Array.iteri
        (fun i r ->
          match r with
          | Error e -> Alcotest.failf "read %d failed: %s" i e
          | Ok (o : Net.Client.outcome) ->
              Alcotest.(check int)
                (Printf.sprintf "read %d reports exactly 2 rounds" i)
                2 o.rounds)
        results;
      let equal = String.equal in
      Alcotest.(check bool) "history regular below the bound" true
        (Histories.Checks.is_regular ~equal (Net.Cluster.history c)))

let beyond_t_crashes_timeout_then_recover () =
  let c =
    Net.Cluster.start ~metrics:true
      ~opts:{ Net.Client.deadline = 0.05; retries = 1; backoff = 0.01 }
      ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write" (Net.Cluster.write c (Core.Value.v "b1")) in
      (* Two simultaneous crashes at t = 1: the quorum S - t = 3 cannot
         assemble, so the read must time out rather than hang or lie. *)
      Net.Cluster.crash c 1;
      Net.Cluster.crash c 2;
      (match Net.Cluster.read c ~reader:1 with
      | Ok o -> Alcotest.failf "read succeeded beyond t: %s" (value_of o)
      | Error _ -> ());
      (* The failed attempts surfaced as a counter, not only stderr. *)
      (match Net.Cluster.metrics c with
      | None -> Alcotest.fail "metrics registry missing"
      | Some m ->
          Alcotest.(check bool) "op.reconnects counted" true
            (Obs.Metrics.counter_value m "op.reconnects" > 0));
      ok_exn "restart 1"
        (Result.map_error (fun _ -> "still alive") (Net.Cluster.restart c 1));
      ok_exn "restart 2"
        (Result.map_error (fun _ -> "still alive") (Net.Cluster.restart c 2));
      (* The parked operation resumes and completes once the quorum is
         back. *)
      let o = ok_exn "read after recovery" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "recovered value" "b1" (value_of o))

(* ----- interposer -------------------------------------------------------- *)

let interposer_is_transparent_without_rules () =
  let c =
    Net.Cluster.start ~interpose:true ~protocol:Net.Protocols.safe ~cfg:cfg4
      ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write via proxies" (Net.Cluster.write c (Core.Value.v "x1")) in
      let o = ok_exn "read via proxies" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "value through interposers" "x1" (value_of o);
      let forwarded =
        Array.fold_left
          (fun acc p -> acc + (Net.Chaos.stats p).Net.Chaos.forwarded)
          0 (Net.Cluster.chaos c)
      in
      Alcotest.(check bool) "frames relayed" true (forwarded > 0))

let interposer_drop_rule_blocks_and_clears () =
  let c =
    Net.Cluster.start ~interpose:true
      ~opts:{ Net.Client.deadline = 0.05; retries = 1; backoff = 0.01 }
      ~protocol:Net.Protocols.safe ~cfg:cfg4 ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let block_all =
        {
          Net.Chaos.dir = Net.Chaos.To_server;
          sender = None;
          from_us = 0;
          until_us = max_int;
          act = Net.Chaos.Drop;
        }
      in
      Array.iter
        (fun p -> Net.Chaos.set_rules p [ block_all ])
        (Net.Cluster.chaos c);
      (match Net.Cluster.write c (Core.Value.v "w1") with
      | Ok _ -> Alcotest.fail "write through a total partition succeeded"
      | Error _ -> ());
      Array.iter (fun p -> Net.Chaos.set_rules p []) (Net.Cluster.chaos c);
      (* A timed-out write is parked, not aborted (the paper's automata
         have no abort): the next write invocation resumes and completes
         the parked w1 — only the one after that writes w2. *)
      let _ = ok_exn "parked write completes after heal" (Net.Cluster.write c (Core.Value.v "w2")) in
      let o = ok_exn "read after partition heals" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "parked w1 landed" "w1" (value_of o);
      let _ = ok_exn "fresh write after heal" (Net.Cluster.write c (Core.Value.v "w2")) in
      let o = ok_exn "read fresh value" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check string) "healed value" "w2" (value_of o);
      let dropped =
        Array.fold_left
          (fun acc p -> acc + (Net.Chaos.stats p).Net.Chaos.dropped)
          0 (Net.Cluster.chaos c)
      in
      Alcotest.(check bool) "partition dropped frames" true (dropped > 0))

(* ----- the same plan on both backends ------------------------------------ *)

let same_plan_runs_on_both_backends () =
  let plan =
    {
      Fault.Plan.horizon = 120;
      actions =
        [
          Crash { obj = 1; at = 10 };
          Recover { obj = 1; at = 60; wipe = false };
        ];
    }
  in
  let cfg = Fault.Campaign.default_cfg Fault.Campaign.Safe ~t:1 ~b:1 in
  Alcotest.(check bool) "plan within budget" true
    (Fault.Plan.within_budget ~cfg plan);
  let sim =
    match
      Fault.Campaign.run_plan_result Fault.Campaign.Safe ~cfg ~seed:42 plan
    with
    | Ok v -> v
    | Error e -> Alcotest.failf "sim run errored: %s" e.Fault.Campaign.error
  in
  let live =
    match
      Fault.Campaign.run_plan_result
        ~backend:(Net.Live.backend ~opts:fast_live ())
        Fault.Campaign.Safe ~cfg ~seed:42 plan
    with
    | Ok v -> v
    | Error e -> Alcotest.failf "live run errored: %s" e.Fault.Campaign.error
  in
  (* A within-budget crash/recover plan must be survived on BOTH
     backends — and judged by the same checkers. *)
  Alcotest.(check bool) "sim survives" false
    (Fault.Campaign.verdict_violates Fault.Campaign.Safe sim);
  Alcotest.(check bool) "live survives" false
    (Fault.Campaign.verdict_violates Fault.Campaign.Safe live);
  Alcotest.(check int) "live completed everything" live.Fault.Campaign.total
    live.Fault.Campaign.completed

(* Extract the key names of a one-line JSON object, in order. *)
let json_keys line =
  let keys = ref [] in
  let n = String.length line in
  let rec scan i =
    if i >= n then ()
    else if line.[i] = '"' then (
      match String.index_from_opt line (i + 1) '"' with
      | None -> ()
      | Some j ->
          if j + 1 < n && line.[j + 1] = ':' then
            keys := String.sub line (i + 1) (j - i - 1) :: !keys;
          (* skip past any value string contents *)
          scan (j + 1))
    else scan (i + 1)
  in
  scan 0;
  List.rev !keys

let matrices_share_a_schema () =
  let seeds = [ 7 ] in
  let sim_cell =
    Fault.Campaign.sweep_protocol ~jobs:1 ~budget:Fault.Plan.small
      ~plans_per_seed:1 Fault.Campaign.Safe ~t:1 ~b:1 ~seeds
  in
  let live_cell =
    Fault.Campaign.sweep_protocol ~jobs:1
      ~backend:(Net.Live.backend ~opts:fast_live ())
      ~budget:Fault.Plan.small ~plans_per_seed:1 Fault.Campaign.Safe ~t:1 ~b:1
      ~seeds
  in
  (* Same campaign coordinates -> Plan.gen draws the SAME plan for both
     backends; the matrices must come out in the same schema. *)
  let sim_line = Fault.Campaign.matrix_jsonl ~backend:"sim" [ sim_cell ] in
  let live_line = Fault.Campaign.matrix_jsonl ~backend:"live" [ live_cell ] in
  Alcotest.(check (list string)) "identical JSONL schema"
    (json_keys sim_line) (json_keys live_line);
  Alcotest.(check string) "sim cell survives" "survives"
    (Fault.Campaign.cell_verdict sim_cell);
  Alcotest.(check string) "live cell survives" "survives"
    (Fault.Campaign.cell_verdict live_cell)

(* ----- live counterexample -> deterministic sim witness ------------------ *)

let live_witness_replays_deterministically () =
  (* Two crashes at t = 1 and nobody recovers: beyond budget, so the
     live run MUST lose wait-freedom — the counterexample we then hand
     to the simulator. *)
  let cfg = Quorum.Config.optimal ~t:1 ~b:0 in
  let plan =
    {
      Fault.Plan.horizon = 60;
      actions = [ Crash { obj = 1; at = 0 }; Crash { obj = 2; at = 0 } ];
    }
  in
  Alcotest.(check bool) "plan is beyond budget" false
    (Fault.Plan.within_budget ~cfg plan);
  let w = Net.Live.capture ~opts:impatient Fault.Campaign.Safe ~cfg ~seed:11 plan in
  Alcotest.(check bool) "live run violates wait-freedom" true
    (w.Net.Live.w_live.Net.Live.verdict.Fault.Campaign.liveness > 0);
  Alcotest.(check bool) "observed fault timeline recorded" true
    (List.exists
       (fun (_, e) -> e = "crash s1")
       w.Net.Live.w_live.Net.Live.timeline);
  (* The bridge: the simulator reproduces the violation from the same
     coordinates... *)
  Alcotest.(check bool) "sim replay reproduces" true (Net.Live.replay_reproduces w);
  let v1 = Net.Live.replay_sim w and v2 = Net.Live.replay_sim w in
  Alcotest.(check bool) "sim replays are identical" true (v1 = v2);
  (* ...and two independent shrink runs land on the byte-identical
     minimal witness. *)
  let s1 = Net.Live.replay_shrunk w and s2 = Net.Live.replay_shrunk w in
  Alcotest.(check string) "byte-identical shrunk witness"
    (Fault.Plan.to_compact s1.Fault.Shrink.plan)
    (Fault.Plan.to_compact s2.Fault.Shrink.plan);
  Alcotest.(check int) "same shrink trajectory" s1.Fault.Shrink.attempts
    s2.Fault.Shrink.attempts;
  (* The minimal witness still needs both crashes: either alone is
     within budget and survivable. *)
  Alcotest.(check int) "1-minimal witness keeps both crashes" 2
    (Fault.Plan.length s1.Fault.Shrink.plan)

let suite =
  ( "chaos-live",
    [
      Alcotest.test_case "injector dispatch covers every action" `Quick
        injector_dispatch_is_total;
      Alcotest.test_case "codec frame peeking is protocol-independent" `Quick
        codec_peek_helpers;
      Alcotest.test_case "restart of a live server is a structured error"
        `Quick restart_alive_is_structured_error;
      Alcotest.test_case "double crash is idempotent" `Quick
        double_crash_is_idempotent;
      Alcotest.test_case "wiped restart loses state, persisted keeps it"
        `Quick wiped_restart_loses_state;
      Alcotest.test_case "crash inside an inflight=16 pipelined window" `Slow
        crash_mid_pipelined_window;
      Alcotest.test_case "crash mid fast-read window falls back cleanly" `Slow
        crash_mid_fast_read_window;
      Alcotest.test_case "below 2t+2b+1 no read ever reports one round" `Slow
        below_bound_never_one_round;
      Alcotest.test_case "beyond-t crashes time out, count reconnects, recover"
        `Quick beyond_t_crashes_timeout_then_recover;
      Alcotest.test_case "interposer is transparent without rules" `Quick
        interposer_is_transparent_without_rules;
      Alcotest.test_case "interposer drop rule partitions and heals" `Quick
        interposer_drop_rule_blocks_and_clears;
      Alcotest.test_case "one plan value runs on both backends" `Slow
        same_plan_runs_on_both_backends;
      Alcotest.test_case "sim and live matrices share a schema" `Slow
        matrices_share_a_schema;
      Alcotest.test_case "live counterexample replays deterministically in sim"
        `Slow live_witness_replays_deterministically;
    ] )
