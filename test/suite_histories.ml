(* Tests for the history recorder and the safety/regularity/atomicity
   checkers — the definitions of paper §2.2 under test. *)

let equal = String.equal

(* Build a history from a compact script:
     `W (k_value, t_inv, t_resp option)` / `R (reader, result, t_inv, t_resp)`
   Stamps are assigned by event time order. *)
let build script =
  let r = Histories.Recorder.create () in
  (* events: (time, action) *)
  let events = ref [] in
  List.iter
    (fun item ->
      match item with
      | `W (v, t_inv, t_resp) ->
          let h = ref None in
          events := (t_inv, fun () -> h := Some (Histories.Recorder.invoke_write r ~time:t_inv v)) :: !events;
          Option.iter
            (fun t ->
              events :=
                (t, fun () -> Histories.Recorder.respond_write r (Option.get !h) ~time:t)
                :: !events)
            t_resp
      | `R (j, result, t_inv, t_resp) ->
          let h = ref None in
          events := (t_inv, fun () -> h := Some (Histories.Recorder.invoke_read r ~time:t_inv ~reader:j)) :: !events;
          Option.iter
            (fun t ->
              events :=
                (t, fun () ->
                    Histories.Recorder.respond_read r (Option.get !h) ~time:t result)
                :: !events)
            t_resp)
    script;
  List.iter
    (fun (_, f) -> f ())
    (List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !events));
  Histories.Recorder.ops r

let test_recorder_basics () =
  let r = Histories.Recorder.create () in
  let w = Histories.Recorder.invoke_write r ~time:0 "a" in
  Histories.Recorder.respond_write r w ~time:5;
  let rd = Histories.Recorder.invoke_read r ~time:10 ~reader:1 in
  Histories.Recorder.respond_read r rd ~time:15 (Histories.Op.Value "a");
  Alcotest.(check int) "writes" 1 (Histories.Recorder.write_count r);
  Alcotest.(check int) "reads" 1 (Histories.Recorder.read_count r);
  Alcotest.(check int) "complete reads" 1
    (List.length (Histories.Recorder.complete_reads r));
  match Histories.Recorder.ops r with
  | [ w_op; r_op ] ->
      Alcotest.(check bool) "write precedes read" true (Histories.Op.precedes w_op r_op);
      Alcotest.(check bool) "not concurrent" false
        (Histories.Op.concurrent w_op r_op)
  | _ -> Alcotest.fail "expected two ops"

let test_recorder_rejects_double_invoke () =
  let r = Histories.Recorder.create () in
  let _ = Histories.Recorder.invoke_write r ~time:0 "a" in
  Alcotest.(check bool) "second write rejected" true
    (try
       ignore (Histories.Recorder.invoke_write r ~time:1 "b");
       false
     with Invalid_argument _ -> true);
  let _ = Histories.Recorder.invoke_read r ~time:0 ~reader:1 in
  Alcotest.(check bool) "second read same reader rejected" true
    (try
       ignore (Histories.Recorder.invoke_read r ~time:1 ~reader:1);
       false
     with Invalid_argument _ -> true);
  (* a different reader is fine *)
  ignore (Histories.Recorder.invoke_read r ~time:1 ~reader:2)

let test_incomplete_ops_visible () =
  let r = Histories.Recorder.create () in
  let _ = Histories.Recorder.invoke_write r ~time:0 "a" in
  match Histories.Recorder.ops r with
  | [ op ] -> Alcotest.(check bool) "incomplete" false (Histories.Op.is_complete op)
  | _ -> Alcotest.fail "expected one op"

let test_concurrency_relation () =
  let ops =
    build [ `W ("a", 0, Some 10); `R (1, Histories.Op.Value "a", 5, Some 15) ]
  in
  match ops with
  | [ w; r ] ->
      Alcotest.(check bool) "overlapping are concurrent" true
        (Histories.Op.concurrent w r)
  | _ -> Alcotest.fail "expected two ops"

(* --- safety ----------------------------------------------------------- *)

let test_safety_ok_sequential () =
  let ops =
    build
      [
        `W ("a", 0, Some 10);
        `R (1, Histories.Op.Value "a", 20, Some 30);
        `W ("b", 40, Some 50);
        `R (1, Histories.Op.Value "b", 60, Some 70);
      ]
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Histories.Checks.check_safety ~equal ops))

let test_safety_bottom_before_writes () =
  let ops = build [ `R (1, Histories.Op.Bottom, 0, Some 5); `W ("a", 10, Some 20) ] in
  Alcotest.(check bool) "bottom before any write is safe" true
    (Histories.Checks.is_safe ~equal ops)

let test_safety_violation_stale () =
  let ops =
    build
      [
        `W ("a", 0, Some 10);
        `W ("b", 20, Some 30);
        `R (1, Histories.Op.Value "a", 40, Some 50);
      ]
  in
  match Histories.Checks.check_safety ~equal ops with
  | [ v ] -> Alcotest.(check string) "rule" "safety" v.Histories.Checks.rule
  | _ -> Alcotest.fail "expected exactly one violation"

let test_safety_violation_unwritten () =
  let ops = build [ `R (1, Histories.Op.Value "ghost", 0, Some 5) ] in
  Alcotest.(check int) "ghost value flagged" 1
    (List.length (Histories.Checks.check_safety ~equal ops))

let test_safety_violation_bottom_after_write () =
  let ops = build [ `W ("a", 0, Some 10); `R (1, Histories.Op.Bottom, 20, Some 30) ] in
  Alcotest.(check int) "bottom after write flagged" 1
    (List.length (Histories.Checks.check_safety ~equal ops))

let test_safety_concurrent_read_unconstrained () =
  let ops =
    build [ `W ("a", 0, Some 100); `R (1, Histories.Op.Value "anything", 10, Some 20) ]
  in
  Alcotest.(check bool) "concurrent read may return garbage" true
    (Histories.Checks.is_safe ~equal ops)

let test_safety_read_concurrent_with_incomplete_write () =
  (* An incomplete write is concurrent with every read invoked after it. *)
  let ops = build [ `W ("a", 0, None); `R (1, Histories.Op.Value "junk", 10, Some 20) ] in
  Alcotest.(check bool) "unconstrained" true (Histories.Checks.is_safe ~equal ops)

(* --- regularity -------------------------------------------------------- *)

let test_regularity_allows_concurrent_fresh () =
  let ops =
    build [ `W ("a", 0, Some 10); `W ("b", 20, Some 100); `R (1, Histories.Op.Value "b", 30, Some 40) ]
  in
  Alcotest.(check bool) "concurrent write's value ok" true
    (Histories.Checks.is_regular ~equal ops)

let test_regularity_rejects_unwritten () =
  let ops =
    build [ `W ("a", 0, Some 100); `R (1, Histories.Op.Value "junk", 10, Some 20) ]
  in
  (match Histories.Checks.check_regularity ~equal ops with
  | [ v ] ->
      Alcotest.(check string) "rule" "regularity(1)" v.Histories.Checks.rule
  | _ -> Alcotest.fail "expected exactly one violation");
  Alcotest.(check bool) "safe (concurrent) but not regular" true
    (Histories.Checks.is_safe ~equal ops)

let test_regularity_rejects_stale () =
  let ops =
    build
      [
        `W ("a", 0, Some 10);
        `W ("b", 20, Some 30);
        `R (1, Histories.Op.Value "a", 40, Some 50);
      ]
  in
  match Histories.Checks.check_regularity ~equal ops with
  | [ v ] ->
      Alcotest.(check string) "rule" "regularity(2)" v.Histories.Checks.rule
  | _ -> Alcotest.fail "expected exactly one violation"

let test_regularity_rejects_future () =
  (* Read completes before the write of the returned value is invoked. *)
  let ops =
    build [ `R (1, Histories.Op.Value "a", 0, Some 5); `W ("a", 10, Some 20) ]
  in
  match Histories.Checks.check_regularity ~equal ops with
  | [ v ] ->
      Alcotest.(check string) "rule" "regularity(3)" v.Histories.Checks.rule
  | _ -> Alcotest.fail "expected exactly one violation"

let test_regularity_incomplete_write_value_allowed () =
  let ops = build [ `W ("a", 0, None); `R (1, Histories.Op.Value "a", 10, Some 20) ] in
  Alcotest.(check bool) "value of concurrent incomplete write ok" true
    (Histories.Checks.is_regular ~equal ops)

(* --- atomicity --------------------------------------------------------- *)

let test_atomicity_detects_new_old_inversion () =
  let ops =
    build
      [
        `W ("a", 0, Some 10);
        `W ("b", 20, Some 100);
        (* both reads concurrent with wr2; regular either way *)
        `R (1, Histories.Op.Value "b", 30, Some 40);
        `R (2, Histories.Op.Value "a", 50, Some 60);
      ]
  in
  Alcotest.(check bool) "regular" true (Histories.Checks.is_regular ~equal ops);
  match Histories.Checks.check_atomicity ~equal ops with
  | [ v ] ->
      Alcotest.(check string) "rule" "atomicity(new-old inversion)"
        v.Histories.Checks.rule
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs))

let test_atomicity_ok_monotone () =
  let ops =
    build
      [
        `W ("a", 0, Some 10);
        `W ("b", 20, Some 100);
        `R (1, Histories.Op.Value "a", 30, Some 40);
        `R (2, Histories.Op.Value "b", 50, Some 60);
      ]
  in
  Alcotest.(check bool) "monotone reads atomic" true
    (Histories.Checks.is_atomic ~equal ops)

let test_atomicity_requires_unique_values () =
  let ops = build [ `W ("a", 0, Some 10); `W ("a", 20, Some 30) ] in
  Alcotest.(check bool) "duplicate write values rejected" true
    (try
       ignore (Histories.Checks.check_atomicity ~equal ops);
       (* no reads: fine, ambiguity only matters when observed *)
       true
     with Invalid_argument _ -> true)

let test_atomicity_implies_regular_on_examples () =
  let histories =
    [
      build [ `W ("a", 0, Some 10); `R (1, Histories.Op.Value "a", 20, Some 30) ];
      build [ `R (1, Histories.Op.Bottom, 0, Some 5) ];
    ]
  in
  List.iter
    (fun ops ->
      if Histories.Checks.is_atomic ~equal ops then begin
        Alcotest.(check bool) "atomic => regular" true
          (Histories.Checks.is_regular ~equal ops);
        Alcotest.(check bool) "regular => safe" true
          (Histories.Checks.is_safe ~equal ops)
      end)
    histories

let suite =
  ( "histories",
    [
      Alcotest.test_case "recorder basics" `Quick test_recorder_basics;
      Alcotest.test_case "recorder rejects double invoke" `Quick
        test_recorder_rejects_double_invoke;
      Alcotest.test_case "incomplete ops visible" `Quick test_incomplete_ops_visible;
      Alcotest.test_case "concurrency relation" `Quick test_concurrency_relation;
      Alcotest.test_case "safety ok sequential" `Quick test_safety_ok_sequential;
      Alcotest.test_case "safety bottom before writes" `Quick
        test_safety_bottom_before_writes;
      Alcotest.test_case "safety flags stale" `Quick test_safety_violation_stale;
      Alcotest.test_case "safety flags unwritten" `Quick
        test_safety_violation_unwritten;
      Alcotest.test_case "safety flags bottom after write" `Quick
        test_safety_violation_bottom_after_write;
      Alcotest.test_case "safety concurrent unconstrained" `Quick
        test_safety_concurrent_read_unconstrained;
      Alcotest.test_case "safety with incomplete write" `Quick
        test_safety_read_concurrent_with_incomplete_write;
      Alcotest.test_case "regularity concurrent fresh ok" `Quick
        test_regularity_allows_concurrent_fresh;
      Alcotest.test_case "regularity flags unwritten" `Quick
        test_regularity_rejects_unwritten;
      Alcotest.test_case "regularity flags stale" `Quick test_regularity_rejects_stale;
      Alcotest.test_case "regularity flags future" `Quick
        test_regularity_rejects_future;
      Alcotest.test_case "regularity incomplete write value" `Quick
        test_regularity_incomplete_write_value_allowed;
      Alcotest.test_case "atomicity new-old inversion" `Quick
        test_atomicity_detects_new_old_inversion;
      Alcotest.test_case "atomicity monotone ok" `Quick test_atomicity_ok_monotone;
      Alcotest.test_case "atomicity unique values" `Quick
        test_atomicity_requires_unique_values;
      Alcotest.test_case "atomic => regular => safe" `Quick
        test_atomicity_implies_regular_on_examples;
    ] )
