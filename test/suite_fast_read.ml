(* The §5.1 one-round fast-read belt (ISSUE 7): the cached/suffix read
   variant behaves identically in the simulator and over real sockets.

   Four layers:

   - golden spans for regular-gc at S = 2t+2b+1 pin the fast path's
     shape byte-for-byte: every read reports 1 round while still
     initiating the round-2 write-back (span.rounds = 2), so the GC
     floors keep advancing;
   - sim <-> net conformance: the same sequential workload through the
     simulator and a loopback cluster yields identical (value,
     reported-rounds) sequences — 1 round at S = 2t+2b+1, exactly 2 at
     S = 2t+b+1 where Proposition 1 forbids fast reads;
   - qcheck properties for the suffix-history optimization: pruned
     replies round-trip bit-exactly through the wire codec, truncation
     never raises, and suffix(from_ts) + the pruned prefix always
     reassembles the full history;
   - cache-resync: the reader automaton's on_reconnect clears its §5.1
     cache (idle) or defers the clear past the in-flight op (mid-read),
     and a live wiped restart bumps op.cache_resyncs without ever
     serving a stale value. *)

open Core

module Gc = Core.Scenario.Make (Core.Proto_regular_gc.Make (struct
  let readers = 2
end))

let delay = Sim.Delay.uniform ~lo:1 ~hi:10

(* S = 2t+2b+1: fast_read_admissible, the §5.1 gate is open. *)
let cfg_fast = Quorum.Config.make_exn ~s:5 ~t:1 ~b:1

(* S = 2t+b+1: optimal resilience, below the Proposition 1 bound. *)
let cfg_slow = Quorum.Config.optimal ~t:1 ~b:1

let ok_exn what = function
  | Ok o -> o
  | Error e -> Alcotest.failf "%s failed: %s" what e

(* ----- golden spans ------------------------------------------------------ *)

(* Exactly `robustread trace -p regular-gc -s 5 -t 1 -b 1 --writes 2
   --reads 2 --seed 42` (see golden/README.md). *)
let schedule =
  let rng = Sim.Prng.create ~seed:42 in
  Core.Schedule.merge
    (Workload.Generate.sequential ~writes:2 ~readers:2 ~gap:60)
    (Workload.Generate.read_mostly ~rng ~writes:0 ~readers:2
       ~reads_per_reader:2 ~horizon:720)

let gc_export () =
  let rep =
    Gc.run ~trace:true ~cfg:cfg_fast ~seed:42 ~delay ~faults:Gc.no_faults
      schedule
  in
  Obs.Export.spans_jsonl rep.spans

let test_two_runs_identical () =
  Alcotest.(check string)
    "byte-identical across runs" (gc_export ()) (gc_export ())

let test_matches_golden () =
  Alcotest.(check string)
    "regular_gc_spans.jsonl matches checked-in golden"
    (Suite_golden_trace.read_golden "regular_gc_spans.jsonl")
    (gc_export ())

let test_golden_span_shape () =
  let rep =
    Gc.run ~cfg:cfg_fast ~seed:42 ~delay ~faults:Gc.no_faults schedule
  in
  let reads, writes =
    List.partition
      (fun s ->
        match s.Obs.Span.kind with Obs.Span.Read _ -> true | Write -> false)
      rep.spans
  in
  Alcotest.(check bool) "workload has reads" true (reads <> []);
  List.iter
    (fun s ->
      (* the decision lands on round-1 evidence... *)
      Alcotest.(check (option int)) "read reports one round" (Some 1)
        s.Obs.Span.reported_rounds;
      (* ...but the round-2 write-back is still initiated (Fig. 6), so
         the GC floor keeps advancing. *)
      Alcotest.(check int) "read still initiates round 2" 2 s.Obs.Span.rounds)
    reads;
  List.iter
    (fun s ->
      Alcotest.(check (option int)) "write takes two rounds" (Some 2)
        s.Obs.Span.reported_rounds)
    writes

(* ----- sim <-> net conformance ------------------------------------------- *)

(* The same sequential workload — write v_k, then one read, three
   times — through both backends.  Sequential means no concurrency, so
   values are fully determined and the per-read reported round count is
   the protocol's, not the scheduler's. *)
let sim_read_pairs cfg =
  let sched = Workload.Generate.sequential ~writes:3 ~readers:1 ~gap:60 in
  let rep = Gc.run ~cfg ~seed:7 ~delay ~faults:Gc.no_faults sched in
  Alcotest.(check bool) "sim run quiescent" true rep.quiescent;
  List.filter_map
    (fun (o : Gc.outcome) ->
      match o.op with
      | Core.Schedule.Read _ ->
          Some
            ( (match o.result with Some v -> Value.to_string v | None -> "?"),
              o.rounds )
      | Core.Schedule.Write _ -> None)
    rep.outcomes

let net_read_pairs cfg =
  let c =
    Net.Cluster.start ~metrics:true
      ~protocol:(Net.Protocols.regular_gc ~readers:1)
      ~cfg ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let pairs = ref [] in
      for k = 1 to 3 do
        let _ =
          ok_exn "write"
            (Net.Cluster.write c (Core.Value.v (Printf.sprintf "v%d" k)))
        in
        let o = ok_exn "read" (Net.Cluster.read c ~reader:1) in
        let v =
          match o.Net.Client.value with
          | Some v -> Value.to_string v
          | None -> "?"
        in
        pairs := (v, o.Net.Client.rounds) :: !pairs
      done;
      let equal = String.equal in
      Alcotest.(check bool) "live history safe" true
        (Histories.Checks.is_safe ~equal (Net.Cluster.history c));
      Alcotest.(check bool) "live history regular" true
        (Histories.Checks.is_regular ~equal (Net.Cluster.history c));
      List.rev !pairs)

let pair_list = Alcotest.(list (pair string int))

let conformance_at_fast_bound () =
  let sim = sim_read_pairs cfg_fast and net = net_read_pairs cfg_fast in
  Alcotest.(check pair_list)
    "identical values and reported rounds at S=2t+2b+1"
    [ ("v1", 1); ("v2", 1); ("v3", 1) ]
    sim;
  Alcotest.(check pair_list) "net conforms to sim" sim net

let conformance_below_fast_bound () =
  let sim = sim_read_pairs cfg_slow and net = net_read_pairs cfg_slow in
  Alcotest.(check pair_list)
    "identical values, always two rounds at S=2t+b+1"
    [ ("v1", 2); ("v2", 2); ("v3", 2) ]
    sim;
  Alcotest.(check pair_list) "net conforms to sim" sim net

(* ----- suffix-history properties ----------------------------------------- *)

(* Suffix semantics live on real (non-negative, smallish) timestamps;
   the full-int-range varint coverage is suite_net_codec's job. *)
let gen_ts = QCheck.Gen.(0 -- 16)

let gen_value =
  QCheck.Gen.(oneof [ return Value.bottom; map Value.v (string_size (0 -- 16)) ])

let gen_tsval = QCheck.Gen.(map2 (fun ts v -> Tsval.make ~ts ~v) gen_ts gen_value)

let gen_wtuple =
  QCheck.Gen.(
    map (fun tsval -> Wtuple.make ~tsval ~tsrarray:Tsr_matrix.empty) gen_tsval)

let gen_history =
  QCheck.Gen.(
    map
      (fun entries ->
        List.fold_left
          (fun h (ts, pw, w) -> History_store.set h ~ts { History_store.pw; w })
          History_store.init entries)
      (list_size (0 -- 6) (triple gen_ts gen_tsval (option gen_wtuple))))

let print_hist_cut (h, from_ts) =
  Format.asprintf "from_ts=%d %a" from_ts History_store.pp h

let arb_hist_cut =
  QCheck.make ~print:print_hist_cut
    QCheck.Gen.(pair gen_history (0 -- 20))

(* suffix(from_ts) ++ the entries below from_ts == the full history:
   exactly the reassembly a cached reader performs when an object ships
   only what the reader does not already hold. *)
let suffix_plus_prefix_is_full =
  QCheck.Test.make ~name:"suffix(from_ts) + cached prefix reassembles history"
    ~count:500 arb_hist_cut (fun (h, from_ts) ->
      let sfx = History_store.suffix h ~from_ts in
      (* the suffix holds exactly the entries >= from_ts *)
      List.for_all (fun (ts, _) -> ts >= from_ts) (History_store.bindings sfx)
      &&
      let rebuilt =
        List.fold_left
          (fun acc (ts, e) ->
            if ts < from_ts then History_store.set acc ~ts e else acc)
          sfx (History_store.bindings h)
      in
      History_store.equal rebuilt h)

let suffix_monotone =
  QCheck.Test.make ~name:"suffix is monotone and idempotent" ~count:300
    arb_hist_cut (fun (h, from_ts) ->
      let sfx = History_store.suffix h ~from_ts in
      History_store.equal sfx (History_store.suffix sfx ~from_ts)
      && History_store.length sfx <= History_store.length h
      && History_store.equal h (History_store.suffix h ~from_ts:0))

let gen_suffix_msg =
  QCheck.Gen.(
    map3
      (fun tsr (h, from_ts) round ->
        let history = History_store.suffix h ~from_ts in
        if round = 1 then Messages.Read1_ack_h { tsr; history }
        else Messages.Read2_ack_h { tsr; history })
      (0 -- 1000)
      (pair gen_history (0 -- 20))
      (1 -- 2))

let arb_suffix_msg = QCheck.make ~print:Messages.info gen_suffix_msg

let hist_of = function
  | Messages.Read1_ack_h { history; _ } | Messages.Read2_ack_h { history; _ }
    ->
      history
  | _ -> History_store.empty

(* Pruned replies are just histories — the wire codec must carry them
   bit-exactly, Msg_from multiplexing included, and the reassembled
   bytes must be stable under re-encoding. *)
let suffix_frames_roundtrip =
  QCheck.Test.make ~name:"suffix-history acks round-trip bit-exactly"
    ~count:500 arb_suffix_msg (fun m ->
      let codec = Net.Codec.messages in
      let bytes = Net.Codec.encode_msg codec m in
      (match Net.Codec.decode_msg codec bytes with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok m' ->
          if not (History_store.equal (hist_of m) (hist_of m')) then
            QCheck.Test.fail_reportf "history mangled: %s vs %s"
              (Messages.info m) (Messages.info m');
          if not (String.equal bytes (Net.Codec.encode_msg codec m')) then
            QCheck.Test.fail_reportf "re-encode differs");
      let wire =
        Net.Codec.encode_frame codec
          (Net.Codec.Msg_from { sender = "r2"; msg = m })
      in
      let payload = String.sub wire 4 (String.length wire - 4) in
      match Net.Codec.decode_payload codec payload with
      | Ok (Net.Codec.Msg_from { sender = "r2"; msg }) ->
          History_store.equal (hist_of m) (hist_of msg)
      | Ok _ -> QCheck.Test.fail_reportf "frame shape changed"
      | Error e -> QCheck.Test.fail_reportf "frame decode failed: %s" e)

let suffix_truncation_never_raises =
  QCheck.Test.make
    ~name:"truncated/mutated suffix acks decode to Error, never raise"
    ~count:200 arb_suffix_msg (fun m ->
      let codec = Net.Codec.messages in
      let bytes = Net.Codec.encode_msg codec m in
      let ok = ref true in
      for len = 0 to String.length bytes - 1 do
        match Net.Codec.decode_msg codec (String.sub bytes 0 len) with
        | Ok _ -> ok := false
        | Error _ -> ()
        | exception _ -> ok := false
      done;
      (* flip each byte once: Error or a decode, never an exception *)
      String.iteri
        (fun pos _ ->
          let b = Bytes.of_string bytes in
          Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor 0xff);
          match Net.Codec.decode_msg codec (Bytes.to_string b) with
          | Ok _ | Error _ -> ()
          | exception _ -> ok := false)
        bytes;
      !ok)

(* ----- automaton cache resync -------------------------------------------- *)

(* Drive Regular_reader directly with synthetic acks: b = 0, so a single
   voucher suffices and three identical honest histories decide a read
   on round-1 evidence. *)
let rr_cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0

let w1 =
  Wtuple.make
    ~tsval:(Tsval.make ~ts:1 ~v:(Value.v "x"))
    ~tsrarray:Tsr_matrix.empty

let hist_with_w1 =
  History_store.on_w History_store.init ~ts':1 ~pw':w1.Wtuple.tsval ~w':w1

let start_exn t =
  match Regular_reader.start_read t with
  | Ok (t, Messages.Read1 { tsr; from_ts }) -> (t, tsr, from_ts)
  | Ok _ -> Alcotest.fail "start_read emitted a non-Read1 message"
  | Error e -> Alcotest.failf "start_read failed: %s" e

(* Feed round-1 acks from objects [objs]; return the state plus any
   Return event. *)
let feed_round1 t ~tsr objs =
  List.fold_left
    (fun (t, ret) obj ->
      let t, evs =
        Regular_reader.on_message t ~obj
          (Messages.Read1_ack_h { tsr; history = hist_with_w1 })
      in
      let ret =
        List.fold_left
          (fun acc -> function
            | Regular_reader.Return { value; rounds } -> Some (value, rounds)
            | Regular_reader.Broadcast _ -> acc)
          ret evs
      in
      (t, ret))
    (t, None) objs

let decide_one_read t =
  let t, tsr, _ = start_exn t in
  match feed_round1 t ~tsr [ 1; 2; 3 ] with
  | t, Some (v, rounds) -> (t, v, rounds)
  | _, None -> Alcotest.fail "three honest acks did not decide the read"

let cache_feeds_from_ts () =
  let t =
    Regular_reader.init ~cfg:rr_cfg ~j:1 ~cached:true ()
  in
  let _, _, from_ts = start_exn t in
  Alcotest.(check int) "first read requests the full history" 0 from_ts;
  let t, v, rounds = decide_one_read t in
  Alcotest.(check string) "decided value" "x" (Value.to_string v);
  Alcotest.(check int) "decided on round-1 evidence" 1 rounds;
  Alcotest.(check int) "cache adopted the decided timestamp" 1
    (Regular_reader.cache t).Tsval.ts;
  let _, _, from_ts = start_exn t in
  Alcotest.(check int) "next read asks only for the suffix" 1 from_ts

let idle_reconnect_clears_cache () =
  let t = Regular_reader.init ~cfg:rr_cfg ~j:1 ~cached:true () in
  let t, _, _ = decide_one_read t in
  let t = Regular_reader.on_reconnect t in
  Alcotest.(check int) "cache cleared while idle" 0
    (Regular_reader.cache t).Tsval.ts;
  let _, _, from_ts = start_exn t in
  Alcotest.(check int) "next read requests the full history again" 0 from_ts

let midop_reconnect_defers_clear () =
  let t = Regular_reader.init ~cfg:rr_cfg ~j:1 ~cached:true () in
  let t, _, _ = decide_one_read t in
  let t, tsr, from_ts = start_exn t in
  Alcotest.(check int) "in-flight read used the cache" 1 from_ts;
  (* one ack in: the op is mid-round-1 when the transport reconnects *)
  let t, ret = feed_round1 t ~tsr [ 1 ] in
  Alcotest.(check bool) "not yet decided" true (ret = None);
  let t = Regular_reader.on_reconnect t in
  Alcotest.(check int) "cache survives for the in-flight op" 1
    (Regular_reader.cache t).Tsval.ts;
  (* the op still completes on the surviving evidence *)
  (match feed_round1 t ~tsr [ 2; 3 ] with
  | t, Some (v, _) ->
      Alcotest.(check string) "in-flight read decided" "x" (Value.to_string v);
      (* ...and only the NEXT read consumes the stale flag *)
      let _, _, from_ts = start_exn t in
      Alcotest.(check int) "next read requests the full history" 0 from_ts
  | _, None -> Alcotest.fail "in-flight read never decided")

let uncached_reader_ignores_reconnect () =
  let t = Regular_reader.init ~cfg:rr_cfg ~j:1 ~cached:false () in
  let t' = Regular_reader.on_reconnect t in
  let _, _, from_ts = start_exn t' in
  Alcotest.(check int) "uncached readers always send from_ts=0" 0 from_ts

(* ----- live cache resync -------------------------------------------------- *)

let live_wiped_restart_resyncs () =
  let c =
    Net.Cluster.start ~metrics:true
      ~opts:{ Net.Client.deadline = 0.5; retries = 8; backoff = 0.01 }
      ~protocol:(Net.Protocols.regular_gc ~readers:1)
      ~cfg:cfg_fast ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop c)
    (fun () ->
      let _ = ok_exn "write v1" (Net.Cluster.write c (Core.Value.v "v1")) in
      let o = ok_exn "read v1" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check (option string)) "cached read sees v1" (Some "v1")
        (Option.map Value.to_string o.Net.Client.value);
      (* Wipe one object: the suffix it would serve for the reader's
         cached timestamp no longer covers what the reader pruned. *)
      Net.Cluster.crash c 2;
      Net.Cluster.restart_exn ~wipe:true c 2;
      let _ = ok_exn "write v2" (Net.Cluster.write c (Core.Value.v "v2")) in
      let resyncs () =
        match Net.Cluster.metrics c with
        | None -> Alcotest.fail "metrics registry missing"
        | Some m -> Obs.Metrics.counter_value m "op.cache_resyncs"
      in
      (* Reconnects are lazy and backed off (~50ms): keep reading until
         the reader's client re-dials the wiped object.  Every read in
         the meantime must already serve the fresh value. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let last = ref None in
      let i = ref 0 in
      while resyncs () = 0 && Unix.gettimeofday () < deadline do
        incr i;
        let o =
          ok_exn (Printf.sprintf "read %d after wipe" !i)
            (Net.Cluster.read c ~reader:1)
        in
        last := Option.map Value.to_string o.Net.Client.value;
        Alcotest.(check (option string)) "post-wipe read is never stale"
          (Some "v2") !last;
        Thread.delay 0.02
      done;
      Alcotest.(check bool) "op.cache_resyncs counted" true (resyncs () > 0);
      (* and the first read after the resync asks for the full history,
         so it is still correct *)
      let o = ok_exn "read after resync" (Net.Cluster.read c ~reader:1) in
      Alcotest.(check (option string)) "post-resync read" (Some "v2")
        (Option.map Value.to_string o.Net.Client.value);
      let equal = String.equal in
      Alcotest.(check bool) "history stays safe across the wipe" true
        (Histories.Checks.is_safe ~equal (Net.Cluster.history c));
      Alcotest.(check bool) "history stays regular across the wipe" true
        (Histories.Checks.is_regular ~equal (Net.Cluster.history c)))

let suite =
  ( "fast-read",
    [
      Alcotest.test_case "regular-gc golden: two runs byte-identical" `Quick
        test_two_runs_identical;
      Alcotest.test_case "regular-gc matches golden" `Quick test_matches_golden;
      Alcotest.test_case "golden spans: reads report 1 round, initiate 2"
        `Quick test_golden_span_shape;
      Alcotest.test_case "sim <-> net conformance at S=2t+2b+1" `Quick
        conformance_at_fast_bound;
      Alcotest.test_case "sim <-> net conformance at S=2t+b+1" `Quick
        conformance_below_fast_bound;
      QCheck_alcotest.to_alcotest suffix_plus_prefix_is_full;
      QCheck_alcotest.to_alcotest suffix_monotone;
      QCheck_alcotest.to_alcotest suffix_frames_roundtrip;
      QCheck_alcotest.to_alcotest suffix_truncation_never_raises;
      Alcotest.test_case "cached reader feeds its timestamp into from_ts"
        `Quick cache_feeds_from_ts;
      Alcotest.test_case "idle reconnect clears the cache" `Quick
        idle_reconnect_clears_cache;
      Alcotest.test_case "mid-op reconnect defers the clear" `Quick
        midop_reconnect_defers_clear;
      Alcotest.test_case "uncached readers ignore reconnects" `Quick
        uncached_reader_ignores_reconnect;
      Alcotest.test_case "live wiped restart resyncs the cache" `Quick
        live_wiped_restart_resyncs;
    ] )
