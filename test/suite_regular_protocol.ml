(* Unit tests of the regular protocol's automata (Figures 5 and 6),
   including the §5.1 cache/suffix optimization. *)

open Core

let cfg = Quorum.Config.optimal ~t:1 ~b:1 (* S=4, quorum 3 *)

let tsval ts v = Tsval.make ~ts ~v:(Value.v v)

let wtuple ts v = Wtuple.make ~tsval:(tsval ts v) ~tsrarray:Tsr_matrix.empty

(* --- Regular_object (Figure 5) ----------------------------------------- *)

let test_object_pw_builds_history () =
  let o = Regular_object.init ~index:1 in
  (* PW of write 1 carries w0 as the previous complete tuple *)
  let o, ack =
    Regular_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.Pw { ts = 1; pw = tsval 1 "a"; w = Wtuple.init })
  in
  (match ack with
  | Some (Messages.Pw_ack { ts = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected PW_ACK");
  let h = Regular_object.history o in
  (match History_store.find h ~ts:1 with
  | Some { History_store.w = None; pw } ->
      Alcotest.(check bool) "entry 1 pre-written" true (Tsval.equal pw (tsval 1 "a"))
  | _ -> Alcotest.fail "entry 1 should be <pw, nil>");
  match History_store.find h ~ts:0 with
  | Some { History_store.w = Some w0; _ } ->
      Alcotest.(check bool) "entry 0 intact" true (Wtuple.equal w0 Wtuple.init)
  | _ -> Alcotest.fail "entry 0 lost"

let test_object_w_completes_entry () =
  let o = Regular_object.init ~index:1 in
  let o, _ =
    Regular_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.Pw { ts = 1; pw = tsval 1 "a"; w = Wtuple.init })
  in
  let o, ack =
    Regular_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.W { ts = 1; pw = tsval 1 "a"; w = wtuple 1 "a" })
  in
  (match ack with
  | Some (Messages.W_ack { ts = 1 }) -> ()
  | _ -> Alcotest.fail "expected W_ACK");
  match History_store.find (Regular_object.history o) ~ts:1 with
  | Some { History_store.w = Some w; _ } ->
      Alcotest.(check bool) "entry 1 completed" true (Wtuple.equal w (wtuple 1 "a"))
  | _ -> Alcotest.fail "entry 1 should be complete"

let test_object_missed_write_backfilled () =
  (* Object misses write 1 entirely; PW of write 2 certifies write 1. *)
  let o = Regular_object.init ~index:1 in
  let o, _ =
    Regular_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.Pw { ts = 2; pw = tsval 2 "b"; w = wtuple 1 "a" })
  in
  match History_store.find (Regular_object.history o) ~ts:1 with
  | Some { History_store.w = Some w; _ } ->
      Alcotest.(check bool) "write 1 backfilled from write 2's PW" true
        (Wtuple.equal w (wtuple 1 "a"))
  | _ -> Alcotest.fail "write 1 entry missing"

let test_object_read_sends_suffix () =
  let o = Regular_object.init ~index:1 in
  let o, _ =
    Regular_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.W { ts = 1; pw = tsval 1 "a"; w = wtuple 1 "a" })
  in
  let o, _ =
    Regular_object.handle o ~src:Sim.Proc_id.Writer
      (Messages.W { ts = 2; pw = tsval 2 "b"; w = wtuple 2 "b" })
  in
  (match
     Regular_object.handle o ~src:(Sim.Proc_id.Reader 1)
       (Messages.Read1 { tsr = 1; from_ts = 0 })
   with
  | _, Some (Messages.Read1_ack_h { history; _ }) ->
      Alcotest.(check int) "full history" 3 (History_store.length history)
  | _ -> Alcotest.fail "expected full-history ack");
  match
    Regular_object.handle o ~src:(Sim.Proc_id.Reader 2)
      (Messages.Read1 { tsr = 1; from_ts = 2 })
  with
  | _, Some (Messages.Read1_ack_h { history; _ }) ->
      Alcotest.(check int) "suffix only" 1 (History_store.length history);
      Alcotest.(check bool) "entry 2 present" true
        (History_store.find history ~ts:2 <> None)
  | _ -> Alcotest.fail "expected suffix ack"

(* --- Regular_reader (Figure 6) ------------------------------------------ *)

let history_with entries =
  List.fold_left
    (fun h (ts, pw, w) -> History_store.set h ~ts { History_store.pw; w })
    History_store.init entries

let start_reader ?(cached = false) () =
  let r = Regular_reader.init ~cfg ~j:1 ~cached () in
  match Regular_reader.start_read r with
  | Ok (r, Messages.Read1 { tsr; from_ts }) -> (r, tsr, from_ts)
  | _ -> Alcotest.fail "expected READ1"

let ack1 ~tsr h = Messages.Read1_ack_h { tsr; history = h }

let ack2 ~tsr h = Messages.Read2_ack_h { tsr; history = h }

let test_reader_fast_path () =
  let r, tsr, from_ts = start_reader () in
  Alcotest.(check int) "uncached reader asks for everything" 0 from_ts;
  let h = history_with [ (1, tsval 1 "a", Some (wtuple 1 "a")) ] in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr h) in
  let r, _ = Regular_reader.on_message r ~obj:2 (ack1 ~tsr h) in
  let _, e = Regular_reader.on_message r ~obj:3 (ack1 ~tsr h) in
  match e with
  | [ Regular_reader.Broadcast (Messages.Read2 _);
      Regular_reader.Return { value; rounds = 1 } ] ->
      Alcotest.(check bool) "returns a" true (Value.equal value (Value.v "a"))
  | _ -> Alcotest.fail "expected fast return"

let test_reader_initial_returns_bottom () =
  let r, tsr, _ = start_reader () in
  let h = History_store.init in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr h) in
  let r, _ = Regular_reader.on_message r ~obj:2 (ack1 ~tsr h) in
  let _, e = Regular_reader.on_message r ~obj:3 (ack1 ~tsr h) in
  match e with
  | [ _; Regular_reader.Return { value; rounds = 1 } ] ->
      Alcotest.(check bool) "bottom before writes" true (Value.is_bottom value)
  | _ -> Alcotest.fail "expected fast bottom"

let test_reader_forged_entry_invalidated () =
  (* One history forges entry 9; honest round-2 histories miss entry 9,
     so invalid(c) fires at t+b+1 = 3 contradictions. *)
  let r, tsr, _ = start_reader () in
  let honest = history_with [ (1, tsval 1 "a", Some (wtuple 1 "a")) ] in
  let forged =
    history_with
      [ (1, tsval 1 "a", Some (wtuple 1 "a")); (9, tsval 9 "ghost", Some (wtuple 9 "ghost")) ]
  in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr honest) in
  let r, _ = Regular_reader.on_message r ~obj:2 (ack1 ~tsr honest) in
  let r, e = Regular_reader.on_message r ~obj:3 (ack1 ~tsr forged) in
  (match e with
  | [ Regular_reader.Broadcast (Messages.Read2 _) ] -> ()
  | _ -> Alcotest.fail "forged entry must force round 2");
  let tsr2 = tsr + 1 in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack2 ~tsr:tsr2 honest) in
  let r, e = Regular_reader.on_message r ~obj:2 (ack2 ~tsr:tsr2 honest) in
  Alcotest.(check bool) "two contradictions not enough" true (e = []);
  let _, e = Regular_reader.on_message r ~obj:4 (ack2 ~tsr:tsr2 honest) in
  match e with
  | [ Regular_reader.Return { value; rounds = 2 } ] ->
      Alcotest.(check bool) "genuine value" true (Value.equal value (Value.v "a"))
  | _ -> Alcotest.fail "expected 2-round return"

let test_reader_cached_prunes_and_falls_back () =
  (* Cached reader: first read caches <1,"a">; second read sends
     from_ts = 1 and, with all candidates below pruned away and empty
     histories (objects legitimately pruned), falls back to the cache. *)
  let r, tsr, _ = start_reader ~cached:true () in
  let h = history_with [ (1, tsval 1 "a", Some (wtuple 1 "a")) ] in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr h) in
  let r, _ = Regular_reader.on_message r ~obj:2 (ack1 ~tsr h) in
  let r, e = Regular_reader.on_message r ~obj:3 (ack1 ~tsr h) in
  (match e with
  | [ _; Regular_reader.Return { value; _ } ] ->
      Alcotest.(check bool) "first read returns a" true (Value.equal value (Value.v "a"))
  | _ -> Alcotest.fail "expected first read to complete");
  Alcotest.(check int) "cache ts" 1 (Regular_reader.cache r).Tsval.ts;
  (* second read *)
  let r, tsr, from_ts =
    match Regular_reader.start_read r with
    | Ok (r, Messages.Read1 { tsr; from_ts }) -> (r, tsr, from_ts)
    | _ -> Alcotest.fail "expected READ1"
  in
  Alcotest.(check int) "second read prunes below cache" 1 from_ts;
  (* suffix replies still contain entry 1 -> returns "a" again *)
  let suffix = History_store.suffix h ~from_ts:1 in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr suffix) in
  let r, _ = Regular_reader.on_message r ~obj:2 (ack1 ~tsr suffix) in
  let _, e = Regular_reader.on_message r ~obj:3 (ack1 ~tsr suffix) in
  match e with
  | [ _; Regular_reader.Return { value; _ } ] ->
      Alcotest.(check bool) "second read returns cached-era value" true
        (Value.equal value (Value.v "a"))
  | _ -> Alcotest.fail "expected second read to complete"

let test_reader_uncached_w0_never_invalid () =
  (* In the unoptimized protocol the candidate set always holds w0, so no
     read can get stuck with an empty candidate set (Lemma 6). *)
  let r, tsr, _ = start_reader () in
  let h = History_store.init in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr h) in
  Alcotest.(check bool) "w0 among candidates" true
    (Wtuple.Set.mem Wtuple.init (Regular_reader.candidates r))

let test_reader_busy_and_dedupe () =
  let r, tsr, _ = start_reader () in
  (match Regular_reader.start_read r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "busy reader must reject start_read");
  let h = History_store.init in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr h) in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr h) in
  Alcotest.(check int) "object counted once" 1
    (Ints.Set.cardinal (Regular_reader.responded_round1 r))

let test_reader_conflict_via_history () =
  (* A candidate inside a history defames object 2: round 1 must not
     complete on replies {1,2,3} (edge s1-s2), completes with s4. *)
  let r, tsr, _ = start_reader () in
  let defaming =
    let m = Tsr_matrix.set_row Tsr_matrix.empty ~obj:2 (Ints.Map.singleton 1 (tsr + 5)) in
    Wtuple.make ~tsval:(tsval 2 "evil") ~tsrarray:m
  in
  let bad_history = history_with [ (2, tsval 2 "evil", Some defaming) ] in
  let r, _ = Regular_reader.on_message r ~obj:1 (ack1 ~tsr bad_history) in
  let r, _ = Regular_reader.on_message r ~obj:2 (ack1 ~tsr History_store.init) in
  let r, e = Regular_reader.on_message r ~obj:3 (ack1 ~tsr History_store.init) in
  Alcotest.(check bool) "conflict blocks round 1" true (e = []);
  let _, e = Regular_reader.on_message r ~obj:4 (ack1 ~tsr History_store.init) in
  match e with
  | Regular_reader.Broadcast (Messages.Read2 _) :: _ -> ()
  | _ -> Alcotest.fail "round 1 should complete with a clean quorum"

let suite =
  ( "regular-protocol",
    [
      Alcotest.test_case "object: PW builds history" `Quick
        test_object_pw_builds_history;
      Alcotest.test_case "object: W completes entry" `Quick
        test_object_w_completes_entry;
      Alcotest.test_case "object: missed write backfilled" `Quick
        test_object_missed_write_backfilled;
      Alcotest.test_case "object: read sends suffix" `Quick
        test_object_read_sends_suffix;
      Alcotest.test_case "reader: fast path" `Quick test_reader_fast_path;
      Alcotest.test_case "reader: initial bottom" `Quick
        test_reader_initial_returns_bottom;
      Alcotest.test_case "reader: forged entry invalidated" `Quick
        test_reader_forged_entry_invalidated;
      Alcotest.test_case "reader: cache prune and fallback" `Quick
        test_reader_cached_prunes_and_falls_back;
      Alcotest.test_case "reader: w0 never invalid (uncached)" `Quick
        test_reader_uncached_w0_never_invalid;
      Alcotest.test_case "reader: busy and dedupe" `Quick test_reader_busy_and_dedupe;
      Alcotest.test_case "reader: conflict via history" `Quick
        test_reader_conflict_via_history;
    ] )
