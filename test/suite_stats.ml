(* Tests for the statistics and table-rendering helpers. *)

let feed xs =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) xs;
  s

let test_empty_summary () =
  let s = Stats.Summary.create () in
  Alcotest.(check int) "count" 0 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Stats.Summary.mean s);
  Alcotest.check_raises "min raises" (Invalid_argument "Summary.min: empty")
    (fun () -> ignore (Stats.Summary.min s))

let test_mean_variance () =
  let s = feed [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "sample variance" (32.0 /. 7.0)
    (Stats.Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max s)

let test_percentiles () =
  let s = feed (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.Summary.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.Summary.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.Summary.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p1" 1.0 (Stats.Summary.percentile s 1.0)

let test_percentile_insertion_order_independent () =
  let a = feed [ 3.0; 1.0; 2.0 ] in
  let b = feed [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "median invariant" (Stats.Summary.median a)
    (Stats.Summary.median b)

let test_add_int () =
  let s = Stats.Summary.create () in
  Stats.Summary.add_int s 3;
  Stats.Summary.add_int s 5;
  Alcotest.(check (float 1e-9)) "mean of ints" 4.0 (Stats.Summary.mean s)

let test_merge () =
  let a = feed [ 1.0; 2.0 ] in
  let b = feed [ 3.0; 4.0 ] in
  let m = Stats.Summary.merge a b in
  Alcotest.(check int) "merged count" 4 (Stats.Summary.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.5 (Stats.Summary.mean m)

let test_histogram () =
  let s = feed [ 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 10.0 ] in
  let h = Stats.Summary.Histogram.of_summary s ~buckets:2 in
  match Stats.Summary.Histogram.buckets h with
  | [ (lo1, _, c1); (_, hi2, c2) ] ->
      Alcotest.(check (float 1e-9)) "first bucket starts at min" 0.0 lo1;
      Alcotest.(check (float 1e-9)) "last bucket ends at max" 10.0 hi2;
      Alcotest.(check int) "all samples bucketed" 10 (c1 + c2)
  | _ -> Alcotest.fail "expected two buckets"

let test_table_rendering () =
  let t = Stats.Table.create ~headers:[ "proto"; "rounds" ] in
  Stats.Table.add_row t [ "safe"; "2" ];
  Stats.Table.add_separator t;
  Stats.Table.add_row t [ "abd"; "1" ];
  let s = Stats.Table.to_string t in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check int) "rows" 2 (Stats.Table.row_count t);
  Alcotest.(check bool) "mentions safe" true (contains s "safe");
  Alcotest.(check bool) "columns padded to equal width" true
    (let lines =
       List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
     in
     match lines with
     | [] -> false
     | first :: rest ->
         List.for_all (fun l -> String.length l = String.length first) rest)

let test_table_width_mismatch () =
  let t = Stats.Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Table.add_row: row width mismatch") (fun () ->
      Stats.Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = Stats.Table.create ~headers:[ "a"; "b" ] in
  Stats.Table.add_row t [ "x,1"; "y" ];
  Stats.Table.add_separator t;
  Stats.Table.add_row t [ "z"; "w" ];
  Alcotest.(check string) "csv" "a,b\nx;1,y\nz,w\n" (Stats.Table.to_csv t)

let test_cells () =
  Alcotest.(check string) "int" "42" (Stats.Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Stats.Table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416"
    (Stats.Table.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "bool" "yes" (Stats.Table.cell_bool true)

(* Regression: percentile caches the sorted array, and the cache must be
   invalidated by add — interleaving queries and adds must agree with a
   freshly-built summary at every step. *)
let test_percentile_cache_invalidation () =
  let s = Stats.Summary.create () in
  List.iteri
    (fun i x ->
      Stats.Summary.add s x;
      let fresh = feed (List.filteri (fun j _ -> j <= i) [ 9.0; 1.0; 5.0; 3.0; 7.0 ]) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "median after %d adds" (i + 1))
        (Stats.Summary.median fresh) (Stats.Summary.median s))
    [ 9.0; 1.0; 5.0; 3.0; 7.0 ]

(* Repeated queries on an unchanged summary must not re-sort: with the
   cache, 10k percentile calls on 5k samples complete instantly; without
   it this test would take visibly long.  We assert correctness (every
   call returns the same value) rather than timing. *)
let test_percentile_repeated_queries_stable () =
  let s = feed (List.init 5_000 (fun i -> float_of_int ((i * 7919) mod 5_000))) in
  let first = Stats.Summary.percentile s 90.0 in
  for _ = 1 to 10_000 do
    if Stats.Summary.percentile s 90.0 <> first then
      Alcotest.fail "percentile changed on unchanged summary"
  done;
  Alcotest.(check (float 1e-9)) "stable" first (Stats.Summary.percentile s 90.0)

let qcheck_percentile_matches_sorted_list =
  QCheck.Test.make ~name:"percentile = nearest-rank on the sorted samples"
    ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 60) (float_range (-50.) 50.))
        (float_range 0. 100.))
    (fun (xs, p) ->
      let s = feed xs in
      let sorted = List.sort Float.compare xs in
      let n = List.length xs in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
      Stats.Summary.percentile s p = List.nth sorted idx)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentiles stay within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = feed xs in
      let p50 = Stats.Summary.percentile s 50.0 in
      p50 >= Stats.Summary.min s && p50 <= Stats.Summary.max s)

let qcheck_mean_bounds =
  QCheck.Test.make ~name:"mean stays within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = feed xs in
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-9 && m <= Stats.Summary.max s +. 1e-9)

let suite =
  ( "stats",
    [
      Alcotest.test_case "empty summary" `Quick test_empty_summary;
      Alcotest.test_case "mean/variance" `Quick test_mean_variance;
      Alcotest.test_case "percentiles" `Quick test_percentiles;
      Alcotest.test_case "percentile order-independent" `Quick
        test_percentile_insertion_order_independent;
      Alcotest.test_case "add_int" `Quick test_add_int;
      Alcotest.test_case "merge" `Quick test_merge;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "table rendering" `Quick test_table_rendering;
      Alcotest.test_case "table width mismatch" `Quick test_table_width_mismatch;
      Alcotest.test_case "table csv" `Quick test_table_csv;
      Alcotest.test_case "cell formatting" `Quick test_cells;
      Alcotest.test_case "percentile cache invalidation" `Quick
        test_percentile_cache_invalidation;
      Alcotest.test_case "percentile repeated queries" `Quick
        test_percentile_repeated_queries_stable;
      QCheck_alcotest.to_alcotest qcheck_percentile_matches_sorted_list;
      QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
      QCheck_alcotest.to_alcotest qcheck_mean_bounds;
    ] )
