(* Tests for process ids, delay models and traces. *)

open Sim

let test_proc_id_compare () =
  Alcotest.(check bool) "writer < reader" true
    (Proc_id.compare Proc_id.Writer (Proc_id.Reader 1) < 0);
  Alcotest.(check bool) "reader < object" true
    (Proc_id.compare (Proc_id.Reader 9) (Proc_id.Obj 1) < 0);
  Alcotest.(check bool) "object index order" true
    (Proc_id.compare (Proc_id.Obj 1) (Proc_id.Obj 2) < 0);
  Alcotest.(check bool) "equal" true (Proc_id.equal (Proc_id.Obj 3) (Proc_id.Obj 3))

let test_proc_id_strings () =
  Alcotest.(check string) "writer" "w" (Proc_id.to_string Proc_id.Writer);
  Alcotest.(check string) "reader" "r2" (Proc_id.to_string (Proc_id.Reader 2));
  Alcotest.(check string) "object" "s5" (Proc_id.to_string (Proc_id.Obj 5))

let test_proc_id_sets () =
  Alcotest.(check int) "objects ~s" 4 (List.length (Proc_id.objects ~s:4));
  Alcotest.(check int) "readers ~r" 3 (List.length (Proc_id.readers ~r:3));
  Alcotest.(check bool) "objects are objects" true
    (List.for_all Proc_id.is_object (Proc_id.objects ~s:4));
  Alcotest.(check bool) "readers are clients" true
    (List.for_all Proc_id.is_client (Proc_id.readers ~r:3))

let test_proc_id_indices () =
  Alcotest.(check int) "obj_index" 7 (Proc_id.obj_index (Proc_id.Obj 7));
  Alcotest.(check int) "reader_index" 2 (Proc_id.reader_index (Proc_id.Reader 2));
  Alcotest.check_raises "obj_index of writer"
    (Invalid_argument "Proc_id.obj_index: w") (fun () ->
      ignore (Proc_id.obj_index Proc_id.Writer))

let sample_many model ~n =
  let rng = Prng.create ~seed:77 in
  List.init n (fun _ ->
      Delay.sample model ~rng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) ~now:0)

let test_delay_constant () =
  Alcotest.(check (list int)) "always 4" [ 4; 4; 4 ]
    (sample_many (Delay.constant 4) ~n:3)

let test_delay_uniform () =
  List.iter
    (fun d -> Alcotest.(check bool) "in range" true (d >= 2 && d <= 6))
    (sample_many (Delay.uniform ~lo:2 ~hi:6) ~n:500)

let test_delay_exponential () =
  List.iter
    (fun d -> Alcotest.(check bool) "at least 1" true (d >= 1))
    (sample_many (Delay.exponential ~mean:4.0) ~n:500)

let test_delay_bimodal () =
  let model =
    Delay.bimodal ~fast:(Delay.constant 1) ~slow:(Delay.constant 100)
      ~slow_fraction:0.5
  in
  let ds = sample_many model ~n:200 in
  Alcotest.(check bool) "both modes appear" true
    (List.mem 1 ds && List.mem 100 ds);
  Alcotest.(check bool) "no other values" true
    (List.for_all (fun d -> d = 1 || d = 100) ds)

let test_delay_per_link () =
  let model =
    Delay.per_link ~default:(Delay.constant 1)
      [ ((Proc_id.Writer, Proc_id.Obj 1), Delay.constant 50) ]
  in
  let rng = Prng.create ~seed:1 in
  Alcotest.(check int) "override" 50
    (Delay.sample model ~rng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) ~now:0);
  Alcotest.(check int) "default" 1
    (Delay.sample model ~rng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 2) ~now:0)

let test_delay_slow_process () =
  let slow = Proc_id.Set.singleton (Proc_id.Obj 2) in
  let model = Delay.slow_process ~slow ~factor:10 (Delay.constant 3) in
  let rng = Prng.create ~seed:1 in
  Alcotest.(check int) "slowed" 30
    (Delay.sample model ~rng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 2) ~now:0);
  Alcotest.(check int) "normal" 3
    (Delay.sample model ~rng ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1) ~now:0)

let test_delay_jitter () =
  let model = Delay.jitter ~base:(Delay.constant 10) ~amplitude:5 in
  List.iter
    (fun d -> Alcotest.(check bool) "within jitter band" true (d >= 10 && d <= 15))
    (sample_many model ~n:200)

let test_trace_counting () =
  let t = Trace.create () in
  Trace.record t
    (Trace.Send { time = 1; src = Proc_id.Writer; dst = Proc_id.Obj 1; info = "m" });
  Trace.record t
    (Trace.Deliver { time = 2; src = Proc_id.Writer; dst = Proc_id.Obj 1; info = "m" });
  Trace.note t ~time:3 "hello";
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check int) "sends" 1
    (Trace.sends_between t ~src:Proc_id.Writer ~dst:(Proc_id.Obj 1));
  Alcotest.(check int) "delivered" 1 (Trace.delivered_to t ~dst:(Proc_id.Obj 1));
  Alcotest.(check int) "notes" 1
    (Trace.count t ~pred:(function Trace.Note _ -> true | _ -> false))

(* Regression for the one-pass counters: Trace.stats must agree with
   separate Trace.count scans for every kind, on a trace mixing all of
   them. *)
let test_trace_stats_one_pass () =
  let t = Trace.create () in
  let w = Proc_id.Writer and o1 = Proc_id.Obj 1 in
  for i = 1 to 5 do
    Trace.record t (Trace.Send { time = i; src = w; dst = o1; info = "m" })
  done;
  for i = 1 to 3 do
    Trace.record t (Trace.Deliver { time = i; src = w; dst = o1; info = "m" })
  done;
  Trace.record t (Trace.Drop { time = 9; src = w; dst = o1; info = "m"; reason = "crashed" });
  Trace.record t (Trace.Crash { time = 10; proc = o1 });
  Trace.record t (Trace.Recover { time = 11; proc = o1 });
  Trace.note t ~time:12 "done";
  let st = Trace.stats t in
  let by_count pred = Trace.count t ~pred in
  Alcotest.(check int) "sends" (by_count (function Trace.Send _ -> true | _ -> false)) st.Trace.sends;
  Alcotest.(check int) "delivers" (by_count (function Trace.Deliver _ -> true | _ -> false)) st.Trace.delivers;
  Alcotest.(check int) "drops" (by_count (function Trace.Drop _ -> true | _ -> false)) st.Trace.drops;
  Alcotest.(check int) "crashes" (by_count (function Trace.Crash _ -> true | _ -> false)) st.Trace.crashes;
  Alcotest.(check int) "recovers" (by_count (function Trace.Recover _ -> true | _ -> false)) st.Trace.recovers;
  Alcotest.(check int) "notes" (by_count (function Trace.Note _ -> true | _ -> false)) st.Trace.notes;
  Alcotest.(check int) "sum = length"
    (st.Trace.sends + st.Trace.delivers + st.Trace.drops + st.Trace.crashes
   + st.Trace.recovers + st.Trace.notes)
    (Trace.length t)

let test_trace_jsonl () =
  let t = Trace.create () in
  Trace.record t
    (Trace.Send { time = 1; src = Proc_id.Writer; dst = Proc_id.Obj 2; info = "w1" });
  Trace.record t
    (Trace.Drop
       { time = 2; src = Proc_id.Writer; dst = Proc_id.Obj 2; info = "w1"; reason = "blocked" });
  Alcotest.(check string) "jsonl"
    ({|{"kind":"send","time":1,"src":"w","dst":"s2","info":"w1"}|} ^ "\n"
   ^ {|{"kind":"drop","time":2,"src":"w","dst":"s2","info":"w1","reason":"blocked"}|}
   ^ "\n")
    (Trace.to_jsonl t)

let test_trace_order () =
  let t = Trace.create () in
  Trace.note t ~time:1 "a";
  Trace.note t ~time:2 "b";
  match Trace.entries t with
  | [ Trace.Note { text = "a"; _ }; Trace.Note { text = "b"; _ } ] -> ()
  | _ -> Alcotest.fail "entries not in recording order"

let suite =
  ( "sim-misc",
    [
      Alcotest.test_case "proc_id compare" `Quick test_proc_id_compare;
      Alcotest.test_case "proc_id strings" `Quick test_proc_id_strings;
      Alcotest.test_case "proc_id sets" `Quick test_proc_id_sets;
      Alcotest.test_case "proc_id indices" `Quick test_proc_id_indices;
      Alcotest.test_case "delay constant" `Quick test_delay_constant;
      Alcotest.test_case "delay uniform" `Quick test_delay_uniform;
      Alcotest.test_case "delay exponential" `Quick test_delay_exponential;
      Alcotest.test_case "delay bimodal" `Quick test_delay_bimodal;
      Alcotest.test_case "delay per-link" `Quick test_delay_per_link;
      Alcotest.test_case "delay slow process" `Quick test_delay_slow_process;
      Alcotest.test_case "delay jitter" `Quick test_delay_jitter;
      Alcotest.test_case "trace counting" `Quick test_trace_counting;
      Alcotest.test_case "trace stats one-pass" `Quick test_trace_stats_one_pass;
      Alcotest.test_case "trace jsonl" `Quick test_trace_jsonl;
      Alcotest.test_case "trace order" `Quick test_trace_order;
    ] )
