(* Quickstart for the network runtime: spin up a 4-object loopback
   cluster (t = 1, b = 0; one object above the 2t+b+1 = 3 minimum, so a
   crashed server leaves slack), do a WRITE, read it back with a fast
   READ, and print the operations' span JSONL — the same export format
   the simulator emits, but with microsecond timestamps from a real
   socket round-trip.

   Run with: dune exec examples/live_cluster.exe *)

let () =
  (* 1. Resilience arithmetic is shared with the simulator. *)
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0 in
  Format.printf "deploying %a over loopback unix sockets@." Quorum.Config.pp cfg;

  (* 2. One server per base object + a writer and a reader client. *)
  let cluster =
    Net.Cluster.start ~protocol:Net.Protocols.safe ~cfg ~readers:1 ()
  in

  (* 3. WRITE, then READ against the live servers. *)
  (match Net.Cluster.write cluster (Core.Value.v "hello-net") with
  | Ok o -> Format.printf "WRITE hello-net completed in %d round(s)@." o.rounds
  | Error e -> failwith ("write failed: " ^ e));
  (match Net.Cluster.read cluster ~reader:1 with
  | Ok o ->
      Format.printf "READ returned %s in %d round(s)@."
        (match o.value with
        | Some v -> Core.Value.to_string v
        | None -> "?")
        o.rounds
  | Error e -> failwith ("read failed: " ^ e));

  (* 4. The live history passes the paper's checkers, like a simulated
     one. *)
  let history = Net.Cluster.history cluster in
  Format.printf "history: %d ops, safe: %b, regular: %b@." (List.length history)
    (Histories.Checks.is_safe ~equal:String.equal history)
    (Histories.Checks.is_regular ~equal:String.equal history);

  (* 5. Spans export through the existing observability pipeline. *)
  print_string "--- span JSONL ---\n";
  print_string (Obs.Export.spans_jsonl (Net.Cluster.spans cluster));

  Net.Cluster.stop cluster
