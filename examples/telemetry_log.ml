(* A realistic deployment scenario: a sensor gateway (the single writer)
   publishes telemetry snapshots into a rack of 7 storage bricks
   (t = 2 may fail, b = 1 of those arbitrarily), while two dashboards
   (readers) poll continuously.

   Uses the regular storage with the S5.1 optimization: dashboards cache
   the last returned snapshot's timestamp, so bricks ship only history
   suffixes — we print how much reply traffic that saves over the
   unoptimized protocol.  Midway, one brick crashes and another starts
   lying; nobody downstream notices.

   Run with: dune exec examples/telemetry_log.exe *)

module Plain = Core.Scenario.Make (Core.Proto_regular.Plain)
module Opt = Core.Scenario.Make (Core.Proto_regular.Optimized)

let snapshots = 20

let schedule seed =
  let rng = Sim.Prng.create ~seed in
  let writes =
    List.init snapshots (fun i ->
        ( i * 50,
          Core.Schedule.Write
            (Core.Value.v (Printf.sprintf "snapshot-%03d" (i + 1))) ))
  in
  let dashboards =
    Workload.Generate.poisson_reads ~rng ~readers:2 ~mean_gap:30.0
      ~horizon:(snapshots * 50)
  in
  Core.Schedule.merge writes dashboards

let faults_plain =
  {
    Plain.crashes = [ (Sim.Proc_id.Obj 6, 400) ];
    byzantine =
      [ (3, Fault.Strategies.forge_history ~value:"corrupted" ~ts_boost:5) ];
  }

let faults_opt =
  {
    Opt.crashes = [ (Sim.Proc_id.Obj 6, 400) ];
    byzantine =
      [ (3, Fault.Strategies.forge_history ~value:"corrupted" ~ts_boost:5) ];
  }

let () =
  let cfg = Quorum.Config.optimal ~t:2 ~b:1 in
  let delay = Sim.Delay.exponential ~mean:4.0 in
  Format.printf
    "Telemetry rack: %d bricks, tolerating %d failures (%d Byzantine).@."
    cfg.Quorum.Config.s cfg.Quorum.Config.t cfg.Quorum.Config.b;
  Format.printf "Brick s6 crashes at t=400; brick s3 forges history entries.@.";

  let rep_opt = Opt.run ~cfg ~seed:99 ~delay ~faults:faults_opt (schedule 99) in
  let rep_plain =
    Plain.run ~cfg ~seed:99 ~delay ~faults:faults_plain (schedule 99)
  in

  let reads =
    List.filter_map
      (fun (o : Opt.outcome) ->
        match (o.op, o.result) with
        | Core.Schedule.Read { reader }, Some v ->
            Some (o.invoked_at, reader, Core.Value.to_string v, o.rounds)
        | _ -> None)
      rep_opt.outcomes
  in
  Format.printf "@.%d dashboard reads; a sample:@." (List.length reads);
  List.iteri
    (fun i (at, reader, v, rounds) ->
      if i mod 7 = 0 then
        Format.printf "  [%5d] dashboard %d sees %-14s (%d round%s)@." at reader
          v rounds
          (if rounds = 1 then "" else "s"))
    reads;

  let equal = String.equal in
  Format.printf "@.regularity holds: %b (every read returns a real snapshot,@."
    (Histories.Checks.is_regular ~equal rep_opt.history);
  Format.printf "never older than the last one finished before it)@.";

  Format.printf "@.reply traffic to dashboards:@.";
  Format.printf "  unoptimized full-history protocol : %7d words@."
    rep_plain.words_to_readers;
  Format.printf "  S5.1 cached/suffix protocol       : %7d words (%.1fx less)@."
    rep_opt.words_to_readers
    (float_of_int rep_plain.words_to_readers
    /. float_of_int (max 1 rep_opt.words_to_readers))
