(* Using the bounded model checker as a library: verify your deployment
   configuration before trusting it.

   Suppose you plan to run the paper's safe storage with t = b = 1 on
   four disks.  This example (1) exhaustively checks a write-then-read
   against every message delivery order, (2) does the same with a
   Byzantine disk injected, (3) samples thousands of random schedules of
   a workload too large to exhaust, and (4) shows what the checker says
   when the deployment is misconfigured (one disk short).

   Run with: dune exec examples/model_checking.exe *)

module Check = Mc.Explorer.Make (Core.Proto_safe)

let forge : Check.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        let forged () =
          let tsval = Core.Tsval.make ~ts:99 ~v:(Core.Value.v "ghost") in
          (tsval, Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty)
        in
        match m with
        | Core.Messages.Read1_ack { tsr; _ } ->
            let pw, w = forged () in
            [ Core.Messages.Read1_ack { tsr; pw; w } ]
        | Core.Messages.Read2_ack { tsr; _ } ->
            let pw, w = forged () in
            [ Core.Messages.Read2_ack { tsr; pw; w } ]
        | m -> [ m ])
  }

let report name (r : Check.result) =
  Format.printf "%-42s %8d states, %d violation(s)%s@." name r.explored
    (List.length r.violations)
    (if r.truncated then " [budget hit]" else "");
  List.iteri
    (fun i (v : Check.violation) ->
      if i < 2 then Format.printf "    [%s] %s@." v.kind v.detail)
    r.violations

let () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  Format.printf "Checking deployment %a...@.@." Quorum.Config.pp cfg;

  (* 1. every delivery order of write-then-read, fault-free *)
  report "write;read, all orders"
    (Check.check ~max_states:1_000_000
       {
         Check.cfg;
         writes = [ Core.Value.v "payload" ];
         reads = [ (1, 1) ];
         sequential = true;
         byz = [];
         crashed = [];
       });

  (* 2. a read against a forging disk, exhaustively *)
  report "read vs forging disk, all orders"
    (Check.check ~max_states:1_000_000
       {
         Check.cfg;
         writes = [];
         reads = [ (1, 1) ];
         sequential = false;
         byz = [ (2, forge) ];
         crashed = [];
       });

  (* 3. a workload too big to exhaust: Monte-Carlo sampling *)
  report "2 writes + 4 reads, 3000 random schedules"
    (Check.random_walks ~walks:3000 ~seed:1
       {
         Check.cfg;
         writes = [ Core.Value.v "a"; Core.Value.v "b" ];
         reads = [ (1, 2); (2, 2) ];
         sequential = false;
         byz = [ (3, forge) ];
         crashed = [];
       });

  (* 4. the misconfigured deployment: same bounds, one disk crashed from
     the start PLUS a Byzantine one = two faults on a t = 1 budget *)
  Format.printf "@.Now the same storage with its fault budget exceeded:@.";
  report "read, byz + crashed disk (t=1!)"
    (Check.check ~max_states:1_000_000
       {
         Check.cfg;
         writes = [];
         reads = [ (1, 1) ];
         sequential = false;
         byz = [ (2, forge) ];
         crashed = [ 4 ];
       });
  Format.printf
    "@.The wait-freedom violation above is the checker telling you that@.";
  Format.printf
    "this configuration cannot tolerate a second fault -- size S for the@.";
  Format.printf "fault budget you actually need (robustread info -t T -b B).@."
