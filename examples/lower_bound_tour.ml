(* A guided tour of the paper's lower-bound proof (Proposition 1,
   Figure 1), executed rather than read.

   The construction deploys S = 2t+2b objects split into blocks T1, T2,
   B1, B2 and builds five runs that end with the reader holding exactly
   the same replies while the outside world differs:

     run3: all correct, read concurrent with the write;
     run4: the write finished first, but B1 maliciously rewinds itself;
     run5: nothing was ever written and B2 maliciously impersonates its
           post-write self.

   Any reader that decides on those replies returns one value for all
   three runs — and safety demands v1 in run4 but bottom in run5.  The
   paper's own two-round protocol refuses to decide and escapes.

   Run with: dune exec examples/lower_bound_tour.exe *)

let tour name (module P : Core.Protocol_intf.S) ~t ~b =
  let module LB = Mc.Lower_bound.Make (P) in
  Format.printf "@.--- %s (t=%d, b=%d) ---@." name t b;
  let outcome = LB.analyse ~t ~b ~value:(Core.Value.v "v1") in
  List.iter (fun line -> Format.printf "%s@." line) outcome.transcript;
  if t = 1 && b = 1 then
    List.iter (fun line -> Format.printf "%s@." line) (LB.figure outcome)

let () =
  Format.printf
    "Proposition 1: no safe storage on S <= 2t+2b objects can answer every@.";
  Format.printf "READ in a single round-trip.  Watch the proof execute:@.";

  (* A one-round protocol walks straight into the trap... *)
  tour "naive fast protocol" (module Baseline.Naive_fast) ~t:1 ~b:1;
  tour "naive fast protocol, larger system" (module Baseline.Naive_fast) ~t:3 ~b:2;

  (* ...a crash-only classic fares no better against Byzantine objects... *)
  tour "ABD (designed for crashes only)" (module Baseline.Abd.Regular) ~t:1 ~b:1;

  (* ...and the paper's algorithm sidesteps it by never deciding fast. *)
  tour "the paper's safe storage" (module Core.Proto_safe) ~t:1 ~b:1;
  tour "the paper's regular storage" (module Core.Proto_regular.Plain) ~t:1 ~b:1;

  Format.printf
    "@.Moral: below 2t+2b+1 objects a reader must spend a second round@.";
  Format.printf
    "to tell a real write from a Byzantine re-enactment of one -- and the@.";
  Format.printf
    "paper's two-round algorithm shows that a second round also suffices.@."
