(* Quickstart: emulate a robust single-writer register over 4 simulated
   base objects (t = 1 failure, of which b = 1 may be Byzantine — the
   optimal S = 2t+b+1 = 4), write twice, read three times, and check the
   resulting history against the paper's safety and regularity
   definitions.

   Run with: dune exec examples/quickstart.exe *)

module Storage = Core.Scenario.Make (Core.Proto_safe)

let () =
  (* 1. Pick the failure bounds; the library computes optimal resilience. *)
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  Format.printf "deploying %a (optimal resilience)@." Quorum.Config.pp cfg;

  (* 2. Describe a workload: times are virtual; one writer, two readers. *)
  let schedule =
    [
      (0, Core.Schedule.Write (Core.Value.v "hello"));
      (100, Core.Schedule.Read { reader = 1 });
      (200, Core.Schedule.Write (Core.Value.v "world"));
      (300, Core.Schedule.Read { reader = 1 });
      (300, Core.Schedule.Read { reader = 2 });
    ]
  in

  (* 3. Run it on a network with random message delays. *)
  let report =
    Storage.run ~cfg ~seed:7
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
      ~faults:Storage.no_faults schedule
  in

  (* 4. Inspect the operations. *)
  List.iter
    (fun (o : Storage.outcome) ->
      match o.op with
      | Core.Schedule.Write v ->
          Format.printf "write %-8s took %d rounds, %d time units@."
            (Core.Value.to_string v) o.rounds (o.completed_at - o.invoked_at)
      | Core.Schedule.Read { reader } ->
          Format.printf "read by r%d returned %-8s (%d round%s)@." reader
            (match o.result with
            | Some v -> Core.Value.to_string v
            | None -> "?")
            o.rounds
            (if o.rounds = 1 then "" else "s"))
    report.outcomes;

  (* 5. Check the history against the paper's correctness definitions. *)
  let equal = String.equal in
  Format.printf "history is safe:    %b@."
    (Histories.Checks.is_safe ~equal report.history);
  Format.printf "history is regular: %b@."
    (Histories.Checks.is_regular ~equal report.history)
