(* Byzantine tolerance in practice: a storage array built from commodity
   disks where one disk has been compromised and lies to clients.

   We run the same workload twice:
   - on the paper's safe storage (S = 4, t = b = 1), where the compromised
     disk mounts increasingly nasty attacks and every read still returns a
     legitimate value within two round-trips;
   - on a naive "trust the freshest reply" protocol, where the same single
     compromised disk makes a reader return data that was never written.

   Run with: dune exec examples/byzantine_tolerance.exe *)

module Robust = Core.Scenario.Make (Core.Proto_safe)
module Naive = Core.Scenario.Make (Baseline.Naive_fast)

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "ledger-v1"));
    (100, Core.Schedule.Read { reader = 1 });
    (200, Core.Schedule.Write (Core.Value.v "ledger-v2"));
    (300, Core.Schedule.Read { reader = 1 });
    (310, Core.Schedule.Read { reader = 2 });
    (400, Core.Schedule.Write (Core.Value.v "ledger-v3"));
    (500, Core.Schedule.Read { reader = 2 });
  ]

let describe name history outcomes =
  let equal = String.equal in
  let violations = Histories.Checks.check_safety ~equal history in
  let reads =
    List.filter_map
      (fun o ->
        match o with
        | { Robust.op = Core.Schedule.Read _; result = Some v; rounds; _ } ->
            Some (Core.Value.to_string v, rounds)
        | _ -> None)
      outcomes
  in
  Format.printf "@.%s:@." name;
  List.iter (fun (v, r) -> Format.printf "  read -> %-12s (%d rounds)@." v r) reads;
  if violations = [] then Format.printf "  safety: OK@."
  else
    List.iter
      (fun v ->
        Format.printf "  SAFETY VIOLATION: %a@."
          (Histories.Checks.pp_violation ~pp_value:Format.pp_print_string)
          v)
      violations

let () =
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let delay = Sim.Delay.uniform ~lo:1 ~hi:10 in

  Format.printf
    "One compromised disk (s2) out of %d; it forges fresh-looking data.@."
    cfg.Quorum.Config.s;

  (* The robust storage under a menu of attacks from the compromised disk. *)
  List.iter
    (fun (attack_name, strategy) ->
      let report =
        Robust.run ~cfg ~seed:21 ~delay
          ~faults:{ Robust.crashes = []; byzantine = [ (2, strategy) ] }
          schedule
      in
      describe
        (Printf.sprintf "robust storage vs %s" attack_name)
        report.history report.outcomes)
    [
      ("forged high timestamps", Fault.Strategies.forge_high_value ~value:"FAKE" ~ts_boost:10);
      ("replayed initial state", Fault.Strategies.replay_initial);
      ("fabricated write", Fault.Strategies.simulate_unwritten_write ~value:"GHOST" ~ts:9);
      ("random garbage", Fault.Strategies.random_garbage);
    ];

  (* The naive protocol against the mildest of those attacks. *)
  let report =
    Naive.run ~cfg:(Quorum.Config.make_exn ~s:4 ~t:1 ~b:1) ~seed:21 ~delay
      ~faults:
        {
          Naive.crashes = [];
          byzantine =
            [ (2, Baseline.Naive_fast.byz_forge_high ~value:"FAKE" ~ts_boost:10) ];
        }
      schedule
  in
  let equal = String.equal in
  let violations = Histories.Checks.check_safety ~equal report.history in
  Format.printf "@.naive 1-round protocol vs forged high timestamps:@.";
  List.iter
    (fun (o : Naive.outcome) ->
      match (o.op, o.result) with
      | Core.Schedule.Read _, Some v ->
          Format.printf "  read -> %-12s@." (Core.Value.to_string v)
      | _ -> ())
    report.outcomes;
  Format.printf "  safety violations: %d (the lower bound made flesh)@."
    (List.length violations)
