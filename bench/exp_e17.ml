(* E17 -- the 1-vs-2-round separation on real sockets.

   Proposition 1 proves no robust register can serve all-fast reads
   below S = 2t+2b+1; §5.1 plus the cached/suffix variant makes reads
   one-round AT the bound.  E17 demonstrates both halves of that claim
   live: the same regular-gc protocol (cached readers, suffix replies,
   opportunistic round-1 decision gated on fast_read_admissible) runs on
   a loopback cluster at

     S = 2t+b+1    (optimal for correctness, below the fast bound:
                    every read MUST take two rounds), and
     S = 2t+2b+1   (the fast-read bound: reads decide after round 1
                    whenever the candidate set already decides).

   Per configuration it sweeps write contention — a writer thread issues
   W concurrent writes while the reader runs E17_READS reads — and
   reports rounds-per-read (from the automaton-reported outcome.rounds),
   the op.fast_reads / op.fallback_rounds counter pair, read p50/p99,
   and full safety/regularity checking of the recorded history.

   Expected shape: rounds_per_read = 2.000 exactly at S = 2t+b+1 at
   every contention level (the gate never opens), ~1.0 at S = 2t+2b+1
   under low contention, drifting toward 2 only as fallbacks appear.
   Violations must be 0 everywhere — the fast path is opportunistic,
   never speculative.

   One JSON artifact: BENCH_e17.json.  Environment-tunable:
     E17_READS        (400)            reads per cell
     E17_WRITE_LEVELS (0,8,32)         concurrent writes during the reads
     E17_T, E17_B     (1, 1)           resilience budget
     E17_TRANSPORT    (unix)           loopback transport: unix | tcp
     E17_OUT          (BENCH_e17.json) output path *)

let getenv_int ?(min = 1) name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= min -> n
      | _ ->
          Printf.eprintf "%s expects an integer >= %d (got %S)\n" name min s;
          exit 2)
  | None -> default

let write_levels () =
  match Sys.getenv_opt "E17_WRITE_LEVELS" with
  | None -> [ 0; 8; 32 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match int_of_string_opt (String.trim x) with
             | Some n when n >= 0 -> n
             | _ ->
                 Printf.eprintf "E17_WRITE_LEVELS: cannot parse %S\n" s;
                 exit 2)

let transport () =
  match Sys.getenv_opt "E17_TRANSPORT" with
  | None -> `Unix
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "tcp" -> `Tcp
      | "unix" -> `Unix
      | _ ->
          Printf.eprintf "E17_TRANSPORT expects tcp or unix (got %S)\n" s;
          exit 2)

let ok_exn what = function
  | Ok o -> o
  | Error e ->
      Printf.eprintf "E17: %s failed: %s\n" what e;
      exit 1

let quantile_or_zero h p =
  match h with
  | Some h when Obs.Metrics.Histogram.count h > 0 ->
      Obs.Metrics.Histogram.quantile h p
  | _ -> 0.

(* One cell: a fresh cluster (clean history and registry), an initial
   write plus a cache-warming read, then [reads] measured reads with
   [writes] concurrent writes racing them from a second thread. *)
let run_cell ~transport ~cfg ~reads ~writes =
  let protocol = Net.Protocols.regular_gc ~readers:1 in
  let cluster =
    Net.Cluster.start ~metrics:true ~transport ~protocol ~cfg ~readers:1 ()
  in
  Fun.protect
    ~finally:(fun () -> Net.Cluster.stop cluster)
    (fun () ->
      let _ = ok_exn "initial write" (Net.Cluster.write cluster (Core.Value.v "e17.v0")) in
      let _ = ok_exn "warm read" (Net.Cluster.read cluster ~reader:1) in
      let writer =
        if writes = 0 then None
        else
          Some
            (Thread.create
               (fun () ->
                 for i = 1 to writes do
                   (match
                      Net.Cluster.write cluster
                        (Core.Value.v (Printf.sprintf "e17.v%d" i))
                    with
                   | Ok _ -> ()
                   | Error e ->
                       Printf.eprintf "E17: concurrent write %d failed: %s\n" i e;
                       exit 1);
                   (* spread the writes across the read window so
                      contention is sustained, not front-loaded *)
                   Thread.delay 0.001
                 done)
               ())
      in
      let round_sum = ref 0 in
      let min_rounds = ref max_int in
      let max_rounds = ref 0 in
      for i = 1 to reads do
        let o =
          ok_exn (Printf.sprintf "read %d" i) (Net.Cluster.read cluster ~reader:1)
        in
        round_sum := !round_sum + o.Net.Client.rounds;
        if o.Net.Client.rounds < !min_rounds then min_rounds := o.Net.Client.rounds;
        if o.Net.Client.rounds > !max_rounds then max_rounds := o.Net.Client.rounds
      done;
      (match writer with Some th -> Thread.join th | None -> ());
      let history = Net.Cluster.history cluster in
      let violations =
        (if Histories.Checks.is_safe ~equal:String.equal history then 0 else 1)
        + if Histories.Checks.is_regular ~equal:String.equal history then 0
          else 1
      in
      let reg = Option.get (Net.Cluster.metrics cluster) in
      let lat = Obs.Metrics.find_histogram reg "op.read.latency_us" in
      ( float_of_int !round_sum /. float_of_int reads,
        !min_rounds,
        !max_rounds,
        Obs.Metrics.counter_value reg "op.fast_reads",
        Obs.Metrics.counter_value reg "op.fallback_rounds",
        quantile_or_zero lat 50.,
        quantile_or_zero lat 99.,
        violations ))

let run () =
  let reads = getenv_int "E17_READS" 400 in
  let t = getenv_int "E17_T" 1 in
  let b = getenv_int "E17_B" 1 in
  let out = Option.value (Sys.getenv_opt "E17_OUT") ~default:"BENCH_e17.json" in
  let levels = write_levels () in
  let transport = transport () in
  let transport_name = match transport with `Tcp -> "tcp" | `Unix -> "unix" in
  let s_slow = (2 * t) + b + 1 in
  let s_fast = (2 * t) + (2 * b) + 1 in
  Exp_common.note
    "E17: fast-read separation (regular-gc, S=%d vs S=%d, t=%d b=%d, %d \
     reads/cell, %s loopback)"
    s_slow s_fast t b reads transport_name;
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e17\",\n  \"protocol\": \"regular-gc\",\n  \
     \"transport\": \"%s\",\n  \"t\": %d, \"b\": %d,\n  \"reads\": %d,\n  \
     \"configs\": [\n"
    transport_name t b reads;
  (* (fast-config uncontended rpr, slow-config worst min/max rounds) *)
  let fast_uncontended_rpr = ref nan in
  let slow_all_two = ref true in
  let total_violations = ref 0 in
  List.iteri
    (fun si s ->
      let cfg = Quorum.Config.make_exn ~s ~t ~b in
      let admissible = Quorum.Config.fast_read_admissible cfg in
      Printf.bprintf buf
        "    { \"s\": %d, \"fast_admissible\": %b,\n      \"cells\": [\n" s
        admissible;
      List.iteri
        (fun li writes ->
          let rpr, rmin, rmax, fast, fallback, p50, p99, violations =
            run_cell ~transport ~cfg ~reads ~writes
          in
          total_violations := !total_violations + violations;
          if admissible && writes = 0 then fast_uncontended_rpr := rpr;
          if (not admissible) && (rmin <> 2 || rmax <> 2) then
            slow_all_two := false;
          Exp_common.note
            "  S=%d writes=%-3d rounds/read=%.3f (min=%d max=%d) fast=%d \
             fallback=%d  p50=%.0fus p99=%.0fus  violations=%d"
            s writes rpr rmin rmax fast fallback p50 p99 violations;
          Printf.bprintf buf
            "        { \"concurrent_writes\": %d, \"reads\": %d,\n\
            \          \"rounds_per_read\": %.3f, \"min_rounds\": %d, \
             \"max_rounds\": %d,\n\
            \          \"fast_reads\": %d, \"fallback_rounds\": %d,\n\
            \          \"read_p50_us\": %.0f, \"read_p99_us\": %.0f, \
             \"violations\": %d }%s\n"
            writes reads rpr rmin rmax fast fallback p50 p99 violations
            (if li = List.length levels - 1 then "" else ","))
        levels;
      Printf.bprintf buf "      ] }%s\n"
        (if si = 1 then "" else ","))
    [ s_slow; s_fast ];
  (* CI-grepable verdicts: the fast config must average strictly under 2
     rounds uncontended (in practice ~1.0), the slow config must never
     leave 2, and no history may violate safety or regularity. *)
  Printf.bprintf buf
    "  ],\n  \"fast_engaged\": %b,\n  \"slow_always_two_rounds\": %b,\n  \
     \"total_violations\": %d\n}\n"
    (!fast_uncontended_rpr < 2.0)
    !slow_all_two !total_violations;
  Obs.Export.write_file ~path:out (Buffer.contents buf);
  Exp_common.note "wrote %s" out
