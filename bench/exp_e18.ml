(* E18 -- multi-domain event-loop scale-out: ops/s vs worker domains.

   E15 established that a single poll domain saturates once enough
   operations are in flight; E18 measures what sharding the same server
   across N worker domains buys.  The server group (Server.start_group)
   partitions base objects -- and every connection accepted for them --
   across N domains (object i is owned by domain (i-1) mod N), so the
   read/decode/step/encode/flush path is domain-local and the only
   cross-domain traffic is the acceptor's connection handoff.

   Load comes from E18_CLIENTS in-process client domains, each driving
   its own pipelined mux (disjoint reader-id ranges, E18_INFLIGHT ops in
   flight) against the shared group; all client domains start each
   timed pass on an atomic barrier.  For each domain count:

   1. throughput: total ops/s across client domains (the cell's wall is
      the slowest domain's) and per-op latency p50/p99;
   2. correctness: every op must return the seeded value; client domain
      0's operations plus the seeding write are recorded in a history
      and must pass the safety and regularity checkers (the sampled
      subset -- recording every domain would serialize them on the
      recorder lock and distort the measurement);
   3. wire efficiency: the merged per-object server registries must show
      wire.batch_size p50 > 1 (scale-out must not destroy coalescing);
   4. partitioning: Server.partition_violations must stay 0 (no base
      object stepped outside its owning domain).

   Speedup verdicts compare the best trial at each domain count.  True
   parallel speedup needs real cores: the artifact records "cores"
   (Domain.recommended_domain_count) so a 1-core container's flat curve
   reads as what it is -- on such hosts the scaling booleans are
   expected false and the run is still a correctness pass.

   One JSON artifact: BENCH_e18.json.  Environment-tunable:
     E18_OPS       (2000)          reads per client domain per cell
     E18_DOMAINS   (1,2,4,8)       worker-domain sweep
     E18_CLIENTS   (4)             client load domains
     E18_INFLIGHT  (16)            operation window per client domain
     E18_TRIALS    (3)             trials per cell; best is reported
     E18_TRANSPORT (unix)          loopback transport: unix | tcp
     E18_OUT       (BENCH_e18.json) output path *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "%s expects a positive integer (got %S)\n" name s;
          exit 2)
  | None -> default

let domain_levels () =
  match Sys.getenv_opt "E18_DOMAINS" with
  | None -> [ 1; 2; 4; 8 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match int_of_string_opt (String.trim x) with
             | Some n when n >= 1 -> n
             | _ ->
                 Printf.eprintf "E18_DOMAINS: cannot parse %S\n" s;
                 exit 2)

let transport () =
  match Sys.getenv_opt "E18_TRANSPORT" with
  | None -> `Unix
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "tcp" -> `Tcp
      | "unix" -> `Unix
      | _ ->
          Printf.eprintf "E18_TRANSPORT expects tcp or unix (got %S)\n" s;
          exit 2)

let fresh_tmpdir () =
  let path = Filename.temp_file "e18" "" in
  Unix.unlink path;
  Unix.mkdir path 0o700;
  path

let summary_json buf label (s : Stats.Summary.t) =
  Printf.bprintf buf
    "\"%s\": { \"count\": %d, \"p50_us\": %.0f, \"p99_us\": %.0f, \
     \"mean_us\": %.1f, \"max_us\": %.0f }"
    label (Stats.Summary.count s)
    (Stats.Summary.percentile s 50.)
    (Stats.Summary.percentile s 99.)
    (Stats.Summary.mean s) (Stats.Summary.max s)

(* One measured pass: every client domain spins on the barrier, then
   runs [ops] reads through its own mux; the cell's wall-clock is the
   slowest domain's (they started together). *)
let timed_pass ~muxes ~ops ~on_event0 =
  let n = Array.length muxes in
  let barrier = Atomic.make 0 in
  let body c () =
    Atomic.incr barrier;
    while Atomic.get barrier < n do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    let results =
      if c = 0 then Net.Client.Mux.run_reads ~on_event:on_event0 muxes.(c) ops
      else Net.Client.Mux.run_reads muxes.(c) ops
    in
    (Unix.gettimeofday () -. t0, results)
  in
  let doms = Array.init n (fun c -> Domain.spawn (body c)) in
  Array.map Domain.join doms

let run () =
  let ops = getenv_int "E18_OPS" 2000 in
  let clients = getenv_int "E18_CLIENTS" 4 in
  let inflight = getenv_int "E18_INFLIGHT" 16 in
  let trials = getenv_int "E18_TRIALS" 3 in
  let out = Option.value (Sys.getenv_opt "E18_OUT") ~default:"BENCH_e18.json" in
  let levels = domain_levels () in
  let transport = transport () in
  let transport_name = match transport with `Tcp -> "tcp" | `Unix -> "unix" in
  let protocol = Net.Protocols.safe in
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0 in
  let s = cfg.Quorum.Config.s in
  let cores = Domain.recommended_domain_count () in
  let total_ops = clients * ops in
  Exp_common.note
    "E18: multi-domain scale-out (%d cores; domains in {%s}; %d client \
     domains x window %d x %d ops; best of %d; %s loopback)"
    cores
    (String.concat "," (List.map string_of_int levels))
    clients inflight ops trials transport_name;
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e18\",\n  \"transport\": \"%s\",\n  \
     \"protocol\": \"%s\",\n  \"s\": %d, \"t\": 1, \"b\": 0,\n  \"cores\": \
     %d,\n  \"clients\": %d,\n  \"inflight\": %d,\n  \"ops_per_client\": \
     %d,\n  \"trials\": %d,\n  \"cells\": [\n"
    transport_name
    (Net.Protocols.name protocol)
    s cores clients inflight ops trials;
  let rates = Hashtbl.create 8 in
  let violations_total = ref 0 in
  let partition_total = ref 0 in
  let batch_ok_all = ref true in
  List.iteri
    (fun li nd ->
      let dir = fresh_tmpdir () in
      let endpoints =
        match transport with
        | `Unix ->
            Array.init s (fun i ->
                Net.Endpoint.Unix_sock
                  (Filename.concat dir (Printf.sprintf "obj%d.sock" (i + 1))))
        | `Tcp ->
            Array.init s (fun _ ->
                Net.Endpoint.Tcp { host = "127.0.0.1"; port = 0 })
      in
      let registries = Array.init s (fun _ -> Obs.Metrics.create ()) in
      let servers =
        Net.Server.start_group
          ~metrics:(fun i -> registries.(i))
          ~domains:nd ~protocol ~cfg endpoints
      in
      let actual = Array.map Net.Server.endpoint servers in
      (* Shared microsecond clock: history stamps from the writer and
         from client domain 0 must be mutually ordered. *)
      let origin = Unix.gettimeofday () in
      let now_us () = int_of_float ((Unix.gettimeofday () -. origin) *. 1e6) in
      let recorder = Histories.Recorder.create () in
      let rec_mutex = Mutex.create () in
      (* Seed one write so every read returns a real value. *)
      let writer =
        Net.Client.connect ~now_us ~protocol ~cfg ~role:`Writer actual
      in
      let wh = Histories.Recorder.invoke_write recorder ~time:(now_us ()) "e18" in
      (match Net.Client.write writer (Core.Value.v "e18") with
      | Ok _ -> Histories.Recorder.respond_write recorder wh ~time:(now_us ())
      | Error e ->
          Printf.eprintf "E18: seed write failed: %s\n" e;
          exit 1);
      Net.Client.close writer;
      (* One mux per client domain, created once per cell: reader ids
         stay unique for the group's lifetime (base objects keep
         per-reader round state) and trials after the first run warm. *)
      let muxes =
        Array.init clients (fun c ->
            Net.Client.Mux.connect ~now_us ~max_inflight:inflight
              ~first_reader:(1 + (c * inflight))
              ~protocol ~cfg ~readers:inflight actual)
      in
      (* Domain 0's ops feed the history; resumed (timed-out) ops keep
         their original invocation, exactly like Cluster.read_pipelined. *)
      let open_ops = Array.make inflight None in
      let on_event0 ev =
        Mutex.lock rec_mutex;
        (try
           (match ev with
           | Net.Client.Mux.Invoke { reader; at_us; _ } -> (
               match open_ops.(reader - 1) with
               | Some _ -> ()
               | None ->
                   open_ops.(reader - 1) <-
                     Some
                       (Histories.Recorder.invoke_read recorder ~time:at_us
                          ~reader))
           | Net.Client.Mux.Respond { reader; at_us; outcome; _ } -> (
               match outcome with
               | Error _ -> ()
               | Ok o -> (
                   match open_ops.(reader - 1) with
                   | None -> ()
                   | Some h ->
                       open_ops.(reader - 1) <- None;
                       let result =
                         match o.Net.Client.value with
                         | Some Core.Value.Bottom | None -> Histories.Op.Bottom
                         | Some (Core.Value.V v) -> Histories.Op.Value v
                       in
                       Histories.Recorder.respond_read recorder h ~time:at_us
                         result)))
         with e ->
           Mutex.unlock rec_mutex;
           raise e);
        Mutex.unlock rec_mutex
      in
      (* untimed warmup: connections, hellos, first automaton steps *)
      ignore
        (timed_pass ~muxes ~ops:(Stdlib.min 200 ops) ~on_event0:(fun _ -> ()));
      let failures = ref 0 in
      let mismatches = ref 0 in
      let best = ref None in
      for trial = 1 to trials do
        let passes = timed_pass ~muxes ~ops ~on_event0 in
        let wall = Array.fold_left (fun m (w, _) -> Float.max m w) 0. passes in
        let lat = Stats.Summary.create () in
        Array.iter
          (fun (_, results) ->
            Array.iter
              (function
                | Ok (o : Net.Client.outcome) ->
                    Stats.Summary.add_int lat o.latency_us;
                    (match o.value with
                    | Some (Core.Value.V "e18") -> ()
                    | Some _ | None -> incr mismatches)
                | Error e ->
                    incr failures;
                    Printf.eprintf "E18: read failed: %s\n" e)
              results)
          passes;
        let rate = float_of_int total_ops /. wall in
        Exp_common.note
          "  domains=%-2d trial=%d  %8.0f ops/s  p50=%.0fus p99=%.0fus" nd
          trial rate
          (Stats.Summary.percentile lat 50.)
          (Stats.Summary.percentile lat 99.);
        match !best with
        | Some (_, r, _) when r >= rate -> ()
        | _ -> best := Some (wall, rate, lat)
      done;
      Array.iter Net.Client.Mux.close muxes;
      Array.iter Net.Server.stop servers;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      let partition = Net.Server.partition_violations servers.(0) in
      let merged = Obs.Metrics.create () in
      Array.iter (fun r -> Obs.Metrics.merge_into ~dst:merged r) registries;
      let history = Histories.Recorder.ops recorder in
      let violations =
        (if Histories.Checks.is_safe ~equal:String.equal history then 0 else 1)
        + if Histories.Checks.is_regular ~equal:String.equal history then 0
          else 1
      in
      violations_total := !violations_total + violations;
      partition_total := !partition_total + partition;
      let wall, rate, lat =
        match !best with Some b -> b | None -> (0., 0., Stats.Summary.create ())
      in
      Hashtbl.replace rates nd rate;
      Printf.bprintf buf
        "    { \"domains\": %d, \"ops\": %d, \"wall_s\": %.4f, \"ops_per_s\": \
         %.1f,\n      "
        nd total_ops wall rate;
      summary_json buf "latency" lat;
      Printf.bprintf buf
        ",\n      \"failures\": %d, \"mismatches\": %d,\n      \
         \"history_ops\": %d, \"violations\": %d, \"partition_violations\": \
         %d"
        !failures !mismatches (List.length history) violations partition;
      (match Obs.Metrics.find_histogram merged "wire.batch_size" with
      | Some h when Obs.Metrics.Histogram.count h > 0 ->
          let p50 = Obs.Metrics.Histogram.quantile h 50. in
          if p50 <= 1. then batch_ok_all := false;
          Printf.bprintf buf
            ",\n      \"batch_size\": { \"count\": %d, \"p50\": %g, \"p99\": \
             %g, \"max\": %g }"
            (Obs.Metrics.Histogram.count h)
            p50
            (Obs.Metrics.Histogram.quantile h 99.)
            (Obs.Metrics.Histogram.max_exn h)
      | _ ->
          batch_ok_all := false;
          Printf.bprintf buf ",\n      \"batch_size\": null");
      Printf.bprintf buf " }%s\n" (if li = List.length levels - 1 then "" else ",")
      )
    levels;
  Printf.bprintf buf "  ],\n";
  let rate_at k = Hashtbl.find_opt rates k in
  (match (rate_at 1, rate_at 2) with
  | Some r1, Some r2 when r1 > 0. ->
      Printf.bprintf buf
        "  \"speedup_2_vs_1\": %.2f,\n  \"scaling_2_vs_1_ok\": %b,\n"
        (r2 /. r1)
        (r2 >= 1.2 *. r1)
  | _ -> ());
  (match (rate_at 1, rate_at 4) with
  | Some r1, Some r4 when r1 > 0. ->
      Printf.bprintf buf
        "  \"speedup_4_vs_1\": %.2f,\n  \"scaling_4_vs_1_ok\": %b,\n"
        (r4 /. r1)
        (r4 >= 2.5 *. r1)
  | _ -> ());
  Printf.bprintf buf
    "  \"batch_p50_gt_1_all\": %b,\n  \"violations_total\": %d,\n  \
     \"partition_violations_total\": %d\n}\n"
    !batch_ok_all !violations_total !partition_total;
  Obs.Export.write_file ~path:out (Buffer.contents buf);
  Exp_common.note "wrote %s" out
