(* E6 -- ablation of the safe reader's defensive mechanisms (S4 intuition):
   disable one knob at a time and measure what breaks under the targeted
   adversary.  Every knob is load-bearing:

   - vouchers < b+1: Byzantine forgeries get validated -> safety violations;
   - no elimination: a forged high candidate is never removed and never
     safe -> reads block forever (wait-freedom lost);
   - no conflict detection: round 1 accepts defamed quorums; termination
     of round 2 then rests on Lemma 3's case (2.b) machinery, which this
     knob implements -- we measure behaviour under the defaming adversary. *)

let delay = Sim.Delay.uniform ~lo:1 ~hi:10

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "v1"));
    (100, Core.Schedule.Read { reader = 1 });
    (200, Core.Schedule.Write (Core.Value.v "v2"));
    (300, Core.Schedule.Read { reader = 1 });
    (320, Core.Schedule.Read { reader = 2 });
    (400, Core.Schedule.Write (Core.Value.v "v3"));
    (500, Core.Schedule.Read { reader = 1 });
  ]

let variants :
    (string * (module Core.Protocol_intf.S with type msg = Core.Messages.t)) list =
  [
    ("full (Fig 4)", (module Core.Proto_safe));
    ("no conflict detection", (module Core.Proto_safe_ablated.No_conflict_detection));
    ("no elimination rule", (module Core.Proto_safe_ablated.No_elimination));
    ("1 voucher (< b+1)", (module Core.Proto_safe_ablated.Single_voucher));
  ]

let attacks =
  [
    ("forge-high", Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:9);
    ("defame", Fault.Strategies.defame ~targets:[ 1; 3; 4 ] ~boost:10);
    ("simulate-write", Fault.Strategies.simulate_unwritten_write ~value:"ghost" ~ts:8);
  ]

let run () =
  Exp_common.section "E6: ablation of the safe reader's mechanisms";
  let table =
    Stats.Table.create
      ~headers:
        [
          "variant"; "attack"; "completed"; "stuck reads"; "rd rnds max";
          "safe?"; "violations";
        ]
  in
  List.iter
    (fun (vname, proto) ->
      List.iter
        (fun (aname, strat) ->
          let contender =
            Exp_common.Contender
              {
                label = vname;
                semantics = "safe";
                proto;
                cfg = Exp_common.core_cfg;
                byz = [ (2, strat) ];
              }
          in
          let s =
            Exp_common.run ~seed:77 ~delay ~crashes:[] ~use_byz:true contender
              schedule
          in
          Stats.Table.add_row table
            [
              vname;
              aname;
              Printf.sprintf "%d/%d" s.completed s.total;
              Stats.Table.cell_int (s.total - s.completed);
              Stats.Table.cell_int s.read_rounds_max;
              Stats.Table.cell_bool s.safe;
              Stats.Table.cell_int s.safety_violations;
            ])
        attacks;
      Stats.Table.add_separator table)
    variants;
  Exp_common.print_table table;
  Exp_common.note
    "Expected shape: the full reader completes everything safely; dropping";
  Exp_common.note
    "the elimination rule wedges reads against forged candidates (stuck";
  Exp_common.note
    "reads > 0); weakening the voucher threshold lets forgeries through";
  Exp_common.note
    "(violations > 0); conflict detection costs nothing here but is what";
  Exp_common.note "Lemma 3's worst-case termination argument leans on."
