(* E5 -- machine-checking Theorems 1-4 on small instances: exhaustive
   delivery-order exploration (plus Byzantine reply rewriting) of tiny
   scenarios.  The safe/regular protocols must show zero violations; the
   naive fast strawman's violation must be found automatically. *)

module ES = Mc.Explorer.Make (Core.Proto_safe)
module ER = Mc.Explorer.Make (Core.Proto_regular.Plain)
module EF = Mc.Explorer.Make (Baseline.Naive_fast)
module EA = Mc.Explorer.Make (Baseline.Abd.Regular)

let cfg_core = Quorum.Config.optimal ~t:1 ~b:1

let forge_naive : EF.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        match m with
        | Baseline.Naive_fast.Read_ack { rid; ts; v = _ } ->
            [
              Baseline.Naive_fast.Read_ack
                { rid; ts = ts + 10; v = Core.Value.v "ghost" };
            ]
        | m -> [ m ]);
  }

let forge_safe : ES.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        let pair () =
          let tsval = Core.Tsval.make ~ts:9 ~v:(Core.Value.v "ghost") in
          (tsval, Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty)
        in
        match m with
        | Core.Messages.Read1_ack { tsr; _ } ->
            let pw, w = pair () in
            [ Core.Messages.Read1_ack { tsr; pw; w } ]
        | Core.Messages.Read2_ack { tsr; _ } ->
            let pw, w = pair () in
            [ Core.Messages.Read2_ack { tsr; pw; w } ]
        | m -> [ m ]);
  }

let forge_regular : ER.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        let corrupt h =
          let tsval = Core.Tsval.make ~ts:9 ~v:(Core.Value.v "ghost") in
          let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
          Core.History_store.set h ~ts:9
            { Core.History_store.pw = tsval; w = Some w }
        in
        match m with
        | Core.Messages.Read1_ack_h { tsr; history } ->
            [ Core.Messages.Read1_ack_h { tsr; history = corrupt history } ]
        | Core.Messages.Read2_ack_h { tsr; history } ->
            [ Core.Messages.Read2_ack_h { tsr; history = corrupt history } ]
        | m -> [ m ]);
  }

let row table name (r : 'a) ~explored ~terminals ~truncated ~violations =
  ignore r;
  Stats.Table.add_row table
    [
      name;
      Stats.Table.cell_int explored;
      Stats.Table.cell_int terminals;
      Stats.Table.cell_bool truncated;
      Stats.Table.cell_int violations;
    ]

let run () =
  Exp_common.section
    "E5: bounded model checking (Theorems 1-4 on small instances)";
  let table =
    Stats.Table.create
      ~headers:[ "scenario"; "states"; "terminals"; "truncated"; "violations" ]
  in
  let budget = 1_500_000 in

  let r =
    ES.check ~max_states:budget
      { ES.cfg = cfg_core; writes = [ Core.Value.v "a" ]; reads = [ (1, 1) ];
        sequential = true; byz = []; crashed = [] }
  in
  row table "safe: W;R sequential (all orders)" r ~explored:r.explored
    ~terminals:r.terminals ~truncated:r.truncated
    ~violations:(List.length r.violations);

  let r =
    ES.check ~max_states:budget
      { ES.cfg = cfg_core; writes = []; reads = [ (1, 1) ]; sequential = false;
        byz = [ (1, forge_safe) ]; crashed = [] }
  in
  row table "safe: R vs byz forger" r ~explored:r.explored ~terminals:r.terminals
    ~truncated:r.truncated ~violations:(List.length r.violations);

  let r =
    (* byz + crash = 2 faults needs t >= 2: S = 2t+b+1 = 6 *)
    ES.check ~max_states:budget
      { ES.cfg = Quorum.Config.optimal ~t:2 ~b:1; writes = [];
        reads = [ (1, 1) ]; sequential = false; byz = [ (2, forge_safe) ];
        crashed = [ 6 ] }
  in
  row table "safe: R vs byz + crash (t=2,b=1)" r ~explored:r.explored
    ~terminals:r.terminals ~truncated:r.truncated
    ~violations:(List.length r.violations);

  let r =
    (* the same overloaded-fault scenario the paper's model excludes:
       byz + crash with t = 1 -- the checker must catch the resulting
       wait-freedom loss, proving it can detect liveness failures *)
    ES.check ~max_states:budget
      { ES.cfg = cfg_core; writes = []; reads = [ (1, 1) ]; sequential = false;
        byz = [ (2, forge_safe) ]; crashed = [ 4 ] }
  in
  row table "safe: 2 faults, t=1 (EXPECT >0)" r ~explored:r.explored
    ~terminals:r.terminals ~truncated:r.truncated
    ~violations:(List.length r.violations);

  let r =
    ER.check ~max_states:budget ~property:`Regular
      { ER.cfg = cfg_core; writes = []; reads = [ (1, 1) ]; sequential = false;
        byz = [ (1, forge_regular) ]; crashed = [] }
  in
  row table "regular: R vs byz forger" r ~explored:r.explored
    ~terminals:r.terminals ~truncated:r.truncated
    ~violations:(List.length r.violations);

  let r =
    ER.check ~max_states:budget ~property:`Regular
      { ER.cfg = cfg_core; writes = [ Core.Value.v "a" ]; reads = [ (1, 1) ];
        sequential = true; byz = []; crashed = [] }
  in
  row table "regular: W;R sequential (all orders)" r ~explored:r.explored
    ~terminals:r.terminals ~truncated:r.truncated
    ~violations:(List.length r.violations);

  let r =
    EA.check ~max_states:budget ~property:`Regular
      { EA.cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0;
        writes = [ Core.Value.v "a" ]; reads = [ (1, 1) ]; sequential = false;
        byz = []; crashed = [] }
  in
  row table "abd: W || R concurrent (all orders)" r ~explored:r.explored
    ~terminals:r.terminals ~truncated:r.truncated
    ~violations:(List.length r.violations);

  let r =
    EF.check ~max_states:budget
      { EF.cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
        writes = [ Core.Value.v "a" ]; reads = [ (1, 1) ]; sequential = true;
        byz = [ (1, forge_naive) ]; crashed = [] }
  in
  row table "naive-fast: W;R vs byz (EXPECT >0)" r ~explored:r.explored
    ~terminals:r.terminals ~truncated:r.truncated
    ~violations:(List.length r.violations);
  (match r.violations with
  | v :: _ -> Exp_common.note "  found: [%s] %s" v.kind v.detail
  | [] -> ());

  Exp_common.print_table table;
  Exp_common.note
    "Expected shape: zero violations except the two EXPECT rows: the";
  Exp_common.note
    "naive-fast safety violation and the wait-freedom loss when the fault";
  Exp_common.note
    "budget is exceeded -- both discovered by the checker without being";
  Exp_common.note "given the adversarial schedule."
