(* E9 -- the server-centric model (paper S6): servers may push
   unsolicited updates to readers.  Two findings, both the paper's:

   1. pushes buy latency, not safety: a 0-round read answered from
      pushed state returns stale values the moment the adversary delays
      the latest write's pushes -- at ANY number of servers;
   2. with the 0-round path disabled, the server-centric storage obeys
      the same 2t+2b threshold as the data-centric one (its polls are
      the fast-safe protocol in disguise), confirming that Proposition 1
      migrates to the server-centric model. *)

let uniform = Sim.Delay.uniform ~lo:1 ~hi:10

let schedule =
  [
    (0, Core.Schedule.Write (Core.Value.v "v1"));
    (100, Core.Schedule.Read { reader = 1 });
    (200, Core.Schedule.Write (Core.Value.v "v2"));
    (300, Core.Schedule.Read { reader = 1 });
    (400, Core.Schedule.Write (Core.Value.v "v3"));
    (500, Core.Schedule.Read { reader = 1 });
  ]

let run_case ~label ~zero_round ?freeze_pushes_at ?unfreeze_pushes_at
    ?(byz_forgers = []) ~s table =
  let cfg = Quorum.Config.make_exn ~s ~t:1 ~b:1 in
  let rep =
    Server_centric.Push_register.run ~zero_round ?freeze_pushes_at
      ?unfreeze_pushes_at ~byz_forgers ~cfg ~seed:31 ~delay:uniform schedule
  in
  let equal = String.equal in
  let violations = Histories.Checks.check_safety ~equal rep.history in
  Stats.Table.add_row table
    [
      label;
      Stats.Table.cell_int s;
      Stats.Table.cell_bool zero_round;
      (match freeze_pushes_at with
      | Some t -> Printf.sprintf "frozen@%d" t
      | None -> "free");
      Printf.sprintf "%d/%d" (List.length rep.outcomes) (List.length schedule);
      Stats.Table.cell_int rep.zero_round_reads;
      Stats.Table.cell_int rep.polled_reads;
      Stats.Table.cell_int (List.length violations);
    ]

let run () =
  Exp_common.section "E9: server-centric model (paper S6) -- pushes vs safety";
  let table =
    Stats.Table.create
      ~headers:
        [
          "case"; "S"; "0-rnd path"; "pushes"; "ops"; "0-rnd reads";
          "polled reads"; "safety violations";
        ]
  in
  run_case ~label:"quiescent network" ~zero_round:true ~s:5 table;
  run_case ~label:"quiescent, S=8" ~zero_round:true ~s:8 table;
  run_case ~label:"adversary delays pushes" ~zero_round:true
    ~freeze_pushes_at:150 ~unfreeze_pushes_at:5_000 ~s:5 table;
  run_case ~label:"same adversary, S=8" ~zero_round:true ~freeze_pushes_at:150
    ~unfreeze_pushes_at:5_000 ~s:8 table;
  run_case ~label:"polls only, same adversary" ~zero_round:false
    ~freeze_pushes_at:150 ~unfreeze_pushes_at:600 ~s:5 table;
  run_case ~label:"polls only + byz forger" ~zero_round:false ~byz_forgers:[ 2 ]
    ~s:5 table;
  Exp_common.print_table table;
  Exp_common.note
    "Expected shape: pushed-state (0-round) reads are fast and correct on a";
  Exp_common.note
    "quiet network but violate safety under delayed pushes REGARDLESS of S;";
  Exp_common.note
    "poll-based reads survive the same adversary (they wait out the freeze)";
  Exp_common.note
    "and tolerate Byzantine forgers at S >= 2t+2b+1 -- the data-centric";
  Exp_common.note "threshold, migrated to the server-centric model (S6).";
  Exp_common.note
    "(The poll path's S = 2t+2b failure is model-checked in E8/fast-safe.)"
