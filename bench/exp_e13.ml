(* E13 -- multicore campaign throughput and hot-path engine speed.

   Three measurements, one JSON artifact (BENCH_e13.json):

   1. Campaign scaling: the E12-style chaos sweep timed serially
      (jobs=1) and then at each domain count in E13_JOBS, with every
      parallel run checked byte-for-byte against the serial survival
      matrix, metrics table and per-cell metrics JSONL.  Speedup is
      wall-clock serial/parallel; on a 1-core host it is ~1.0 by
      construction and only CI's multi-core runners show scaling.

   2. Span determinism probe: the same batch of scenario runs fanned
      through Exec.Pool at jobs=1 and jobs=4, comparing the
      concatenated span JSONL bytes.

   3. Single-run hot path: one large read-mostly workload through the
      engine with metrics off and on, reporting delivered messages per
      second and the observability overhead the interned-counter fast
      path leaves behind.

   Scale is environment-tunable so CI can run a smoke version:
     E13_SEEDS (20)   seeds per protocol cell
     E13_PLANS (3)    fault plans per seed
     E13_JOBS (2,4,8) comma-separated domain counts to benchmark
     E13_OUT  (BENCH_e13.json) output path *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "%s expects a positive integer (got %S)\n" name s;
          exit 2)
  | None -> default

let jobs_list () =
  match Sys.getenv_opt "E13_JOBS" with
  | None -> [ 2; 4; 8 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match int_of_string_opt (String.trim x) with
             | Some n when n >= 1 -> n
             | _ ->
                 Printf.eprintf "E13_JOBS expects e.g. \"2,4,8\" (got %S)\n" s;
                 exit 2)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Every observable byte of a campaign result: the survival matrix, the
   per-cell metrics table, and each cell's metrics JSONL export.  Two
   sweeps agree on this string iff they are indistinguishable to every
   downstream consumer. *)
let fingerprint cells =
  String.concat ""
    (Stats.Table.to_string (Fault.Campaign.matrix_table cells)
     :: Stats.Table.to_string (Fault.Campaign.metrics_table cells)
     :: List.map
          (fun (c : Fault.Campaign.cell) ->
            Obs.Export.metrics_jsonl
              ~labels:
                [ ("protocol", Fault.Campaign.protocol_name c.protocol) ]
              c.metrics)
          cells)

let engine_events cells =
  List.fold_left
    (fun acc (c : Fault.Campaign.cell) ->
      acc + Obs.Metrics.counter_value c.metrics "engine.events")
    0 cells

(* Fan a batch of deterministic scenario runs across the pool and
   concatenate their span exports in input order. *)
let span_probe ~jobs =
  let module Sc = Core.Scenario.Make (Core.Proto_safe) in
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let one seed =
    let rng = Sim.Prng.create ~seed in
    let schedule =
      Workload.Generate.read_mostly ~rng ~writes:3 ~readers:2
        ~reads_per_reader:4 ~horizon:2_000
    in
    let rep =
      Sc.run ~cfg ~seed
        ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
        ~faults:{ Sc.crashes = []; byzantine = [] }
        schedule
    in
    Obs.Export.spans_jsonl rep.spans
  in
  String.concat "" (Exec.Pool.map ~jobs one (List.init 8 (fun i -> i + 1)))

(* One big single-engine run: the workload the hot-path work (interned
   counters, fault-free send fast path, dense handler tables, O(1)
   queue-depth) is aimed at. *)
let single_run ~metrics () =
  let module Sc = Core.Scenario.Make (Core.Proto_regular.Plain) in
  let cfg = Quorum.Config.optimal ~t:1 ~b:1 in
  let seed = 7 in
  let rng = Sim.Prng.create ~seed in
  let schedule =
    Core.Schedule.merge
      (Workload.Generate.sequential ~writes:40 ~readers:6 ~gap:60)
      (Workload.Generate.read_mostly ~rng ~writes:0 ~readers:6
         ~reads_per_reader:400 ~horizon:120_000)
  in
  let registry = if metrics then Some (Obs.Metrics.create ()) else None in
  let rep =
    Sc.run ?metrics:registry ~cfg ~seed
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
      ~faults:{ Sc.crashes = []; byzantine = [] }
      schedule
  in
  rep.messages_delivered

let run () =
  let seeds_n = getenv_int "E13_SEEDS" 20 in
  let plans = getenv_int "E13_PLANS" 3 in
  let jobs = jobs_list () in
  let out = Option.value (Sys.getenv_opt "E13_OUT") ~default:"BENCH_e13.json" in
  let cores = Exec.Pool.recommended_jobs () in
  Exp_common.section
    (Printf.sprintf
       "E13: multicore campaign + hot-path speed (%d seeds x %d plans; host \
        cores %d)"
       seeds_n plans cores);
  let seeds = List.init seeds_n (fun i -> i + 1) in
  let protocols = Fault.Campaign.all_protocols in
  let sweep ~jobs () =
    Fault.Campaign.sweep ~jobs ~budget:Fault.Plan.medium ~plans_per_seed:plans
      ~protocols ~t:1 ~b:1 ~seeds ()
  in
  let serial_cells, serial_wall = timed (sweep ~jobs:1) in
  let serial_fp = fingerprint serial_cells in
  let runs = List.length protocols * seeds_n * plans in
  Exp_common.note "serial (jobs=1): %.2fs, %.1f runs/s" serial_wall
    (float_of_int runs /. serial_wall);
  let parallel =
    List.map
      (fun j ->
        let cells, wall = timed (sweep ~jobs:j) in
        let identical = String.equal (fingerprint cells) serial_fp in
        Exp_common.note "jobs=%d: %.2fs, speedup %.2fx, byte-identical: %b" j
          wall (serial_wall /. wall) identical;
        (j, wall, identical))
      jobs
  in
  let all_identical = List.for_all (fun (_, _, id) -> id) parallel in
  let spans_identical =
    String.equal (span_probe ~jobs:1) (span_probe ~jobs:4)
  in
  Exp_common.note "span JSONL jobs=1 vs jobs=4 byte-identical: %b"
    spans_identical;
  let msgs_off, wall_off = timed (single_run ~metrics:false) in
  let msgs_on, wall_on = timed (single_run ~metrics:true) in
  let rate_off = float_of_int msgs_off /. wall_off in
  let rate_on = float_of_int msgs_on /. wall_on in
  Exp_common.note
    "single run: %.0f msgs/s metrics-off, %.0f msgs/s metrics-on (%.1f%% \
     overhead)"
    rate_off rate_on
    ((wall_on -. wall_off) /. wall_off *. 100.);
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\n";
  Printf.bprintf buf "  \"bench\": \"e13\",\n";
  Printf.bprintf buf "  \"host_cores\": %d,\n" cores;
  Printf.bprintf buf "  \"seeds\": %d,\n" seeds_n;
  Printf.bprintf buf "  \"plans_per_seed\": %d,\n" plans;
  Printf.bprintf buf "  \"campaign_runs\": %d,\n" runs;
  Printf.bprintf buf "  \"engine_events\": %d,\n" (engine_events serial_cells);
  Printf.bprintf buf
    "  \"serial\": { \"jobs\": 1, \"wall_s\": %.4f, \"runs_per_s\": %.1f },\n"
    serial_wall
    (float_of_int runs /. serial_wall);
  Printf.bprintf buf "  \"parallel\": [\n";
  List.iteri
    (fun i (j, wall, identical) ->
      Printf.bprintf buf
        "    { \"jobs\": %d, \"wall_s\": %.4f, \"runs_per_s\": %.1f, \
         \"speedup\": %.2f, \"byte_identical\": %b }%s\n"
        j wall
        (float_of_int runs /. wall)
        (serial_wall /. wall) identical
        (if i = List.length parallel - 1 then "" else ","))
    parallel;
  Printf.bprintf buf "  ],\n";
  Printf.bprintf buf "  \"byte_identical\": %b,\n" all_identical;
  Printf.bprintf buf "  \"span_jsonl_identical\": %b,\n" spans_identical;
  Printf.bprintf buf
    "  \"single_run\": { \"messages\": %d, \"msgs_per_s_metrics_off\": %.0f, \
     \"msgs_per_s_metrics_on\": %.0f, \"metrics_overhead_pct\": %.1f }\n"
    msgs_off rate_off rate_on
    ((wall_on -. wall_off) /. wall_off *. 100.);
  Printf.bprintf buf "}\n";
  Obs.Export.write_file ~path:out (Buffer.contents buf);
  Exp_common.note "wrote %s" out;
  if not (all_identical && spans_identical) then begin
    Exp_common.note "FATAL: parallel execution changed observable bytes";
    exit 1
  end
