(* E10 -- storage exhaustion and garbage collection.

   The paper keeps full per-object histories for the regular storage and
   flags that this "might raise issues of storage exhaustion and needs
   careful garbage collection" (S1).  This experiment quantifies the
   problem and validates our reader-floor collector
   (Regular_object_gc): per-object history length as writes accumulate,
   for the plain Figure 5 object vs the GC variant, with two cached
   readers trailing the writer. *)

let write_gc o ~ts v =
  let tsval = Core.Tsval.make ~ts ~v:(Core.Value.v v) in
  let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
  fst
    (Core.Regular_object_gc.handle o ~src:Sim.Proc_id.Writer
       (Core.Messages.W { ts; pw = tsval; w }))

let write_plain o ~ts v =
  let tsval = Core.Tsval.make ~ts ~v:(Core.Value.v v) in
  let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
  fst
    (Core.Regular_object.handle o ~src:Sim.Proc_id.Writer
       (Core.Messages.W { ts; pw = tsval; w }))

let read_gc o ~reader ~tsr ~from_ts =
  fst
    (Core.Regular_object_gc.handle o ~src:(Sim.Proc_id.Reader reader)
       (Core.Messages.Read1 { tsr; from_ts }))

let run () =
  Exp_common.section "E10: history growth and garbage collection (S1 remark)";
  Exp_common.note
    "Per-object history entries after N writes, readers' caches trailing";
  Exp_common.note "by [lag] writes (two readers, floors drive the collector):";
  let table =
    Stats.Table.create
      ~headers:
        [ "writes"; "reader lag"; "plain entries"; "gc entries"; "bound" ]
  in
  List.iter
    (fun (writes, lag) ->
      let gc = ref (Core.Regular_object_gc.init ~index:1 ~readers:2) in
      let plain = ref (Core.Regular_object.init ~index:1) in
      let max_gc = ref 0 in
      for k = 1 to writes do
        gc := write_gc !gc ~ts:k (string_of_int k);
        plain := write_plain !plain ~ts:k (string_of_int k);
        let from_ts = max 0 (k - lag) in
        gc := read_gc !gc ~reader:1 ~tsr:(2 * k) ~from_ts;
        gc := read_gc !gc ~reader:2 ~tsr:(2 * k) ~from_ts;
        max_gc := max !max_gc (Core.Regular_object_gc.history_length !gc)
      done;
      Stats.Table.add_row table
        [
          Stats.Table.cell_int writes;
          Stats.Table.cell_int lag;
          Stats.Table.cell_int
            (Core.History_store.length (Core.Regular_object.history !plain));
          Stats.Table.cell_int (Core.Regular_object_gc.history_length !gc);
          Printf.sprintf "max %d" !max_gc;
        ])
    [ (10, 1); (100, 1); (1000, 1); (1000, 5); (1000, 20); (1000, 100) ];
  Exp_common.print_table table;
  Exp_common.note
    "Expected shape: plain objects retain one entry per write forever";
  Exp_common.note
    "(linear growth -- the exhaustion the paper warns about); GC objects";
  Exp_common.note
    "retain O(reader lag) entries regardless of the total write count.";

  (* End-to-end sanity: the GC variant's runs remain regular. *)
  let module Gc2 = Core.Proto_regular_gc.Make (struct
    let readers = 2
  end) in
  let module Sc = Core.Scenario.Make (Gc2) in
  let schedule =
    List.concat
      (List.init 25 (fun i ->
           [
             (i * 100, Core.Schedule.Write (Workload.Generate.payload (i + 1)));
             ((i * 100) + 40, Core.Schedule.Read { reader = 1 });
             ((i * 100) + 60, Core.Schedule.Read { reader = 2 });
           ]))
  in
  let rep =
    Sc.run
      ~cfg:(Quorum.Config.optimal ~t:1 ~b:1)
      ~seed:77
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
      ~faults:
        {
          Sc.crashes = [];
          byzantine =
            [ (2, Fault.Strategies.forge_history ~value:"evil" ~ts_boost:5) ];
        }
      schedule
  in
  Exp_common.note "";
  Exp_common.note
    "End-to-end with GC objects + one Byzantine forger: %d/%d ops, regular: %b"
    (List.length rep.outcomes) (List.length schedule)
    (Histories.Checks.is_regular ~equal:String.equal rep.history)
