(* E2 -- Proposition 2: the safe storage's round complexity.

   Sweep (t, b) and fault mixes; every WRITE must take exactly 2 rounds
   and every READ at most 2, whatever the adversary does -- with the
   fraction of reads that decide on round-1 data reported as the "fast
   read" share (common-case latency). *)

let grid = [ (1, 1); (2, 1); (2, 2); (3, 2); (3, 3) ]

let delay = Sim.Delay.uniform ~lo:1 ~hi:10

let fault_mixes cfg =
  let t = cfg.Quorum.Config.t and b = cfg.Quorum.Config.b in
  let crash_times = List.init (t - b) (fun i -> (Sim.Proc_id.Obj (b + 1 + i), 50)) in
  let byz =
    List.init b (fun i ->
        ((i + 1), Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:9))
  in
  [
    ("none", [], []);
    ("crash t-b", crash_times, []);
    ("byz b", [], byz);
    ("byz b + crash", crash_times, byz);
  ]

let run () =
  Exp_common.section "E2: safe storage (Figures 2-4) round complexity";
  Exp_common.note
    "Paper claim: both READ and WRITE complete in at most 2 rounds at";
  Exp_common.note "optimal resilience S = 2t+b+1, for any failure pattern.";
  let table =
    Stats.Table.create
      ~headers:
        [
          "t"; "b"; "S"; "faults"; "ops"; "wr rnds (max)"; "rd rnds (mean)";
          "rd rnds (max)"; "fast reads"; "safe?";
        ]
  in
  List.iter
    (fun (t, b) ->
      let cfg = Quorum.Config.optimal ~t ~b in
      List.iter
        (fun (fname, crashes, byz) ->
          let contender =
            Exp_common.Contender
              {
                label = "safe";
                semantics = "safe";
                proto = (module Core.Proto_safe);
                cfg;
                byz;
              }
          in
          let rng = Sim.Prng.create ~seed:(t * 100 + b) in
          let schedule =
            Core.Schedule.merge
              (Workload.Generate.sequential ~writes:5 ~readers:2 ~gap:60)
              (Workload.Generate.read_mostly ~rng ~writes:0 ~readers:2
                 ~reads_per_reader:5 ~horizon:900)
          in
          let s =
            Exp_common.run ~seed:(t * 10 + b) ~delay ~crashes ~use_byz:true
              contender schedule
          in
          Stats.Table.add_row table
            [
              Stats.Table.cell_int t;
              Stats.Table.cell_int b;
              Stats.Table.cell_int cfg.Quorum.Config.s;
              fname;
              Printf.sprintf "%d/%d" s.completed s.total;
              Stats.Table.cell_int s.write_rounds_max;
              Stats.Table.cell_float s.read_rounds_mean;
              Stats.Table.cell_int s.read_rounds_max;
              Printf.sprintf "%.0f%%" (100.0 *. s.fast_read_fraction);
              Stats.Table.cell_bool s.safe;
            ])
        (fault_mixes cfg);
      Stats.Table.add_separator table)
    grid;
  Exp_common.print_table table;
  Exp_common.note
    "Expected shape: wr rounds = 2 always; rd rounds <= 2 always; the fast";
  Exp_common.note
    "share drops only when Byzantine forgeries force genuine second rounds."
