(* E11 -- scalability of the emulation: how the paper's protocols behave
   as the system grows (more base objects, more readers).

   The theory says rounds are flat (2/2) at any scale; what grows is
   message count (Theta(S) per round) and simulated latency tails
   (waiting for S-t of S replies).  This table quantifies both and
   doubles as a simulator throughput check (wall-clock column). *)

let run_one ~t ~b ~readers ~seed =
  let cfg = Quorum.Config.optimal ~t ~b in
  let module Sc = Core.Scenario.Make (Core.Proto_safe) in
  let rng = Sim.Prng.create ~seed in
  let schedule =
    Core.Schedule.merge
      (Workload.Generate.sequential ~writes:5 ~readers ~gap:50)
      (Workload.Generate.read_mostly ~rng ~writes:0 ~readers
         ~reads_per_reader:10
         ~horizon:(50 * 5 * (readers + 1)))
  in
  let started = Unix.gettimeofday () in
  let rep =
    Sc.run ~max_events:10_000_000 ~cfg ~seed
      ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
      ~faults:Sc.no_faults schedule
  in
  let elapsed = Unix.gettimeofday () -. started in
  let reads = Stats.Summary.create () in
  List.iter
    (fun (o : Sc.outcome) ->
      match o.op with
      | Core.Schedule.Read _ ->
          Stats.Summary.add_int reads (o.completed_at - o.invoked_at)
      | Core.Schedule.Write _ -> ())
    rep.outcomes;
  ( cfg,
    List.length schedule,
    List.length rep.outcomes,
    rep.messages_delivered,
    Stats.Summary.median reads,
    Stats.Summary.percentile reads 99.0,
    Histories.Checks.is_safe ~equal:String.equal rep.history,
    elapsed )

let run () =
  Exp_common.section "E11: scalability (safe protocol, fault-free)";
  let table =
    Stats.Table.create
      ~headers:
        [
          "t"; "b"; "S"; "readers"; "ops"; "messages"; "rd p50"; "rd p99";
          "safe?"; "wall (s)";
        ]
  in
  List.iter
    (fun (t, b, readers) ->
      let cfg, total, done_, msgs, p50, p99, safe, wall =
        run_one ~t ~b ~readers ~seed:3
      in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int t;
          Stats.Table.cell_int b;
          Stats.Table.cell_int cfg.Quorum.Config.s;
          Stats.Table.cell_int readers;
          Printf.sprintf "%d/%d" done_ total;
          Stats.Table.cell_int msgs;
          Stats.Table.cell_float p50;
          Stats.Table.cell_float p99;
          Stats.Table.cell_bool safe;
          Stats.Table.cell_float ~decimals:3 wall;
        ])
    [
      (1, 1, 1);
      (1, 1, 4);
      (1, 1, 16);
      (2, 2, 4);
      (4, 4, 4);
      (8, 8, 4);
      (16, 16, 4);
      (4, 4, 16);
    ];
  Exp_common.print_table table;
  Exp_common.note
    "Expected shape: operations and safety are scale-invariant; message";
  Exp_common.note
    "count grows linearly in S and in the number of reads; read latency";
  Exp_common.note
    "p50 stays ~1 round-trip (straggler-trimmed: the reader waits for only";
  Exp_common.note "S-t of S replies, so larger S does not stretch the tail)."
