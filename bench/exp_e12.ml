(* E12 -- chaos campaign survival matrix: random within-budget fault
   plans (crashes, crash-recoveries, partitions, duplication, mid-run
   Byzantine switches) swept over every protocol.

   The paper's claims take the shape "for every execution with at most t
   faults, b Byzantine": this experiment samples that quantifier.  The
   robust protocols must survive all plans; naive-fast at S = 2t+2b is
   the Proposition 1 negative control, and its first failing plan is
   delta-debugged down to the minimal witness — invariably a single
   forging object. *)

let run () =
  Exp_common.section
    "E12: chaos campaign survival matrix (20 seeds x 3 plans, medium budget)";
  let seeds = List.init 20 (fun i -> i + 1) in
  let cells =
    Fault.Campaign.sweep ?jobs:!Exp_common.jobs ~budget:Fault.Plan.medium
      ~plans_per_seed:3 ~protocols:Fault.Campaign.all_protocols ~t:1 ~b:1
      ~seeds ()
  in
  Exp_common.print_table (Fault.Campaign.matrix_table cells);
  List.iter
    (fun (c : Fault.Campaign.cell) ->
      match c.failures with
      | [] -> ()
      | (seed, plan) :: _ ->
          let repro =
            Fault.Campaign.violates c.protocol ~cfg:c.cfg ~seed
          in
          let o = Fault.Shrink.minimize ~repro plan in
          Exp_common.note "%s: first failing plan (seed %d, %d actions) shrinks to:"
            (Fault.Campaign.protocol_name c.protocol)
            seed (Fault.Plan.length plan);
          Exp_common.note "  %s   [%d candidate runs]"
            (Fault.Plan.to_compact o.Fault.Shrink.plan)
            o.Fault.Shrink.attempts)
    cells;
  Exp_common.note
    "Expected shape: every robust protocol survives every within-budget";
  Exp_common.note
    "plan (safety and wait-freedom; regularity where claimed); naive-fast";
  Exp_common.note
    "at S = 2t+2b breaks on a large fraction of plans, and each failure";
  Exp_common.note
    "shrinks to a single Byzantine forgery — Proposition 1's adversary."
