(* E8 -- the resilience/round-complexity threshold, swept over S.

   The paper (with its ref. [1]) locates a sharp threshold at
   S = 2t+2b+1: below it, safe storage needs 2-round operations; at or
   above it, single-round reads and writes suffice.  We sweep S for
   t = b = 1 and report, per protocol:

   - whether the Proposition 1 construction (run at S' = 2t+2b) breaks
     it (a fixed property of the protocol, shown once), and
   - empirically, at each deployed S: rounds used and whether an
     exhaustive model check of write-then-read finds violations. *)

module LB_fast = Mc.Lower_bound.Make (Baseline.Fast_safe)
module E_fast = Mc.Explorer.Make (Baseline.Fast_safe)
module E_safe = Mc.Explorer.Make (Core.Proto_safe)

let replay_initial : E_fast.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        match m with
        | Baseline.Fast_safe.Read_ack { rid; _ } ->
            [ Baseline.Fast_safe.Read_ack { rid; ts = 0; v = Core.Value.bottom } ]
        | m -> [ m ]);
  }

let forge_safe : E_safe.pure_byz =
  {
    rewrite =
      (fun ~src:_ m ->
        let pair () =
          let tsval = Core.Tsval.make ~ts:9 ~v:(Core.Value.v "ghost") in
          (tsval, Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty)
        in
        match m with
        | Core.Messages.Read1_ack { tsr; _ } ->
            let pw, w = pair () in
            [ Core.Messages.Read1_ack { tsr; pw; w } ]
        | Core.Messages.Read2_ack { tsr; _ } ->
            let pw, w = pair () in
            [ Core.Messages.Read2_ack { tsr; pw; w } ]
        | m -> [ m ]);
  }

let run () =
  Exp_common.section "E8: the S = 2t+2b+1 threshold (t = b = 1)";
  Exp_common.note
    "Model-check 1 write ; 1 read (all delivery orders, byz replay/forge)";
  Exp_common.note "per deployed S, for the 1-round and the 2-round protocol:";
  let table =
    Stats.Table.create
      ~headers:
        [
          "S"; "regime"; "fast-safe (1-rnd): violations"; "states";
          "safe (2-rnd): violations"; "states";
        ]
  in
  List.iter
    (fun s ->
      let cfg = Quorum.Config.make_exn ~s ~t:1 ~b:1 in
      let regime =
        if s < Quorum.Config.optimal_s ~t:1 ~b:1 then "below resilience bound"
        else if not (Quorum.Config.fast_read_admissible cfg) then
          "2 rounds necessary"
        else "1 round sufficient"
      in
      let r_fast =
        E_fast.check ~max_states:1_000_000
          {
            E_fast.cfg = cfg;
            writes = [ Core.Value.v "v1" ];
            reads = [ (1, 1) ];
            sequential = true;
            byz = [ (1, replay_initial) ];
            crashed = [];
          }
      in
      let r_safe =
        E_safe.check ~max_states:1_000_000
          {
            E_safe.cfg = cfg;
            writes = [];
            reads = [ (1, 1) ];
            sequential = false;
            byz = [ (1, forge_safe) ];
            crashed = [];
          }
      in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int s;
          regime;
          Stats.Table.cell_int (List.length r_fast.violations);
          Stats.Table.cell_int r_fast.explored;
          Stats.Table.cell_int (List.length r_safe.violations);
          Stats.Table.cell_int r_safe.explored;
        ])
    [ 4; 5; 6 ];
  Exp_common.print_table table;

  Exp_common.note "";
  Exp_common.note
    "Proposition 1 construction applied to the 1-round protocol at S = 2t+2b:";
  let o = LB_fast.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  List.iter (fun l -> Printf.printf "  %s\n" l) o.transcript;
  Exp_common.note "";
  Exp_common.note
    "Expected shape: the 1-round fast-safe protocol is broken at S = 4 =";
  Exp_common.note
    "2t+2b (both by the proof construction and by exhaustive checking) and";
  Exp_common.note
    "clean at S >= 5 = 2t+2b+1; the 2-round safe protocol is clean";
  Exp_common.note "everywhere -- the threshold is exactly where the paper puts it."
