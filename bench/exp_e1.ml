(* E1 -- Figure 1 / Proposition 1: mechanized lower-bound construction.

   For every protocol and a sweep of (t, b), build the five runs of the
   proof on S = 2t+2b objects, verify indistinguishability, and report
   the verdict: fast protocols violate safety in run4 or run5; the
   paper's two-round protocols escape as "not fast". *)

let grid = [ (1, 1); (2, 1); (2, 2); (3, 2); (3, 3); (4, 2) ]

let analyse_with (module P : Core.Protocol_intf.S) ~t ~b =
  let module LB = Mc.Lower_bound.Make (P) in
  let o = LB.analyse ~t ~b ~value:(Core.Value.v "v1") in
  let verdict =
    match o.verdict with
    | LB.Violates_run4 { returned; _ } ->
        Printf.sprintf "VIOLATES run4 (returned %s, expected v1)"
          (Core.Value.to_string returned)
    | LB.Violates_run5 { returned } ->
        Printf.sprintf "VIOLATES run5 (returned %s, expected _|_)"
          (Core.Value.to_string returned)
    | LB.Not_fast -> "escapes (not a fast read)"
  in
  (verdict, o.replies_equal, o.write_rounds)

let run () =
  Exp_common.section
    "E1: Proposition 1 / Figure 1 -- fast reads on S = 2t+2b objects";
  Exp_common.note
    "Paper claim: with at most 2t+2b base objects, no safe storage has only";
  Exp_common.note
    "fast (single-round) READs.  We rebuild the proof's five runs per protocol.";

  (* Full narration once, for the canonical t = b = 1 strawman case. *)
  let module LB = Mc.Lower_bound.Make (Baseline.Naive_fast) in
  let o = LB.analyse ~t:1 ~b:1 ~value:(Core.Value.v "v1") in
  Exp_common.note "";
  Exp_common.note "Transcript (naive-fast, t = b = 1):";
  List.iter (fun l -> Printf.printf "  %s\n" l) o.transcript;
  Exp_common.note "";
  List.iter (fun l -> Printf.printf "  %s\n" l) (LB.figure o);

  let protos =
    [
      ("naive-fast", (module Baseline.Naive_fast : Core.Protocol_intf.S));
      ("abd", (module Baseline.Abd.Regular));
      ("safe (Fig 2-4)", (module Core.Proto_safe));
      ("regular (Fig 5-6)", (module Core.Proto_regular.Plain));
      ("regular-opt (S5.1)", (module Core.Proto_regular.Optimized));
      ("non-modifying [1]", (module Baseline.Nonmod));
      ("fast-safe (needs S>2t+2b)", (module Baseline.Fast_safe));
    ]
  in
  let table =
    Stats.Table.create
      ~headers:[ "protocol"; "t"; "b"; "S=2t+2b"; "wr rounds"; "indist."; "verdict" ]
  in
  List.iter
    (fun (name, p) ->
      List.iter
        (fun (t, b) ->
          let verdict, eq, wr = analyse_with p ~t ~b in
          Stats.Table.add_row table
            [
              name;
              Stats.Table.cell_int t;
              Stats.Table.cell_int b;
              Stats.Table.cell_int ((2 * t) + (2 * b));
              Stats.Table.cell_int wr;
              Stats.Table.cell_bool eq;
              verdict;
            ])
        grid;
      Stats.Table.add_separator table)
    protos;
  Exp_common.print_table table;
  Exp_common.note
    "The authenticated baseline is exempt: the run5 adversary cannot forge";
  Exp_common.note
    "sigma2, which contains a writer signature over a never-written value --";
  Exp_common.note
    "exactly the paper's remark that authentication sidesteps the bound [15]."
