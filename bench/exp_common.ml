(* Shared machinery for the experiment tables: a protocol-agnostic runner
   that executes any Protocol_intf.S implementation on a schedule and
   projects the report onto a flat summary the tables consume. *)

(* Worker-domain count for the experiments that fan out over a pool
   ([None] = the pool's own default, [Exec.Pool.recommended_jobs]).
   Set once by the harness from [--jobs N]; results are byte-identical
   whatever the value. *)
let jobs : int option ref = ref None

type summary = {
  completed : int;
  total : int;
  write_rounds_max : int;
  read_rounds_mean : float;
  read_rounds_max : int;
  fast_read_fraction : float;  (* reads decided on round-1 data *)
  read_latency : Stats.Summary.t;
  write_latency : Stats.Summary.t;
  words_to_readers : int;
  safe : bool;
  regular : bool;
  safety_violations : int;
}

(* A protocol packed with its Byzantine plan (existential over the wire
   message type, so heterogeneous protocols fit in one list). *)
type contender =
  | Contender : {
      label : string;
      semantics : string;
      proto : (module Core.Protocol_intf.S with type msg = 'm);
      cfg : Quorum.Config.t;
      byz : (int * 'm Core.Byz.factory) list;
    }
      -> contender

let label (Contender c) = c.label

let semantics (Contender c) = c.semantics

let config (Contender c) = c.cfg

let run ?(max_events = 2_000_000) ~seed ~delay ~crashes ~use_byz
    (Contender { proto = (module P); cfg; byz; _ }) schedule =
  let module Sc = Core.Scenario.Make (P) in
  let faults = { Sc.crashes; byzantine = (if use_byz then byz else []) } in
  let rep = Sc.run ~max_events ~cfg ~seed ~delay ~faults schedule in
  let read_rounds = Stats.Summary.create () in
  let read_latency = Stats.Summary.create () in
  let write_latency = Stats.Summary.create () in
  let write_rounds_max = ref 0 in
  let fast_reads = ref 0 in
  let reads = ref 0 in
  List.iter
    (fun (o : Sc.outcome) ->
      match o.op with
      | Core.Schedule.Read _ ->
          incr reads;
          if o.rounds = 1 then incr fast_reads;
          Stats.Summary.add_int read_rounds o.rounds;
          Stats.Summary.add_int read_latency (o.completed_at - o.invoked_at)
      | Core.Schedule.Write _ ->
          write_rounds_max := max !write_rounds_max o.rounds;
          Stats.Summary.add_int write_latency (o.completed_at - o.invoked_at))
    rep.outcomes;
  let equal = String.equal in
  let violations = Histories.Checks.check_safety ~equal rep.history in
  {
    completed = List.length rep.outcomes;
    total = List.length schedule;
    write_rounds_max = !write_rounds_max;
    read_rounds_mean = Stats.Summary.mean read_rounds;
    read_rounds_max =
      (if Stats.Summary.count read_rounds = 0 then 0
       else int_of_float (Stats.Summary.max read_rounds));
    fast_read_fraction =
      (if !reads = 0 then 0.0 else float_of_int !fast_reads /. float_of_int !reads);
    read_latency;
    write_latency;
    words_to_readers = rep.words_to_readers;
    safe = violations = [];
    regular = Histories.Checks.is_regular ~equal rep.history;
    safety_violations = List.length violations;
  }

let section title =
  Printf.printf "\n=== %s ===\n" title

let note fmt = Printf.printf (fmt ^^ "\n")

let csv_counter = ref 0

(* Tables also land as CSV files when ROBUSTREAD_CSV_DIR is set, for
   downstream plotting. *)
let print_table t =
  print_string (Stats.Table.to_string t);
  match Sys.getenv_opt "ROBUSTREAD_CSV_DIR" with
  | None -> ()
  | Some dir ->
      incr csv_counter;
      let path = Filename.concat dir (Printf.sprintf "table_%02d.csv" !csv_counter) in
      let oc = open_out path in
      output_string oc (Stats.Table.to_csv t);
      close_out oc

(* Standard contenders used by several experiments (t = b = 1). *)
let core_cfg = Quorum.Config.optimal ~t:1 ~b:1

let safe_contender =
  Contender
    {
      label = "safe (Fig 2-4)";
      semantics = "safe";
      proto = (module Core.Proto_safe);
      cfg = core_cfg;
      byz = [ (2, Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:9) ];
    }

let regular_contender =
  Contender
    {
      label = "regular (Fig 5-6)";
      semantics = "regular";
      proto = (module Core.Proto_regular.Plain);
      cfg = core_cfg;
      byz = [ (2, Fault.Strategies.forge_history ~value:"evil" ~ts_boost:9) ];
    }

let regular_opt_contender =
  Contender
    {
      label = "regular-opt (S5.1)";
      semantics = "regular";
      proto = (module Core.Proto_regular.Optimized);
      cfg = core_cfg;
      byz = [ (2, Fault.Strategies.forge_history ~value:"evil" ~ts_boost:9) ];
    }

let abd_contender =
  Contender
    {
      label = "ABD [3] (b=0)";
      semantics = "regular";
      proto = (module Baseline.Abd.Regular);
      cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0;
      byz = [ (1, Baseline.Abd.byz_forge_high ~value:"evil" ~ts_boost:9) ];
    }

let abd_atomic_contender =
  Contender
    {
      label = "ABD atomic";
      semantics = "atomic";
      proto = (module Baseline.Abd.Atomic);
      cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0;
      byz = [ (1, Baseline.Abd.byz_forge_high ~value:"evil" ~ts_boost:9) ];
    }

let nonmod_contender =
  Contender
    {
      label = "non-modifying [1]";
      semantics = "safe";
      proto = (module Baseline.Nonmod);
      cfg = core_cfg;
      byz = [ (2, Baseline.Nonmod.byz_forge_high ~value:"evil" ~ts_boost:9) ];
    }

let auth_contender =
  Contender
    {
      label = "authenticated [15]";
      semantics = "regular";
      proto = (module Baseline.Auth);
      cfg = core_cfg;
      byz = [ (2, Baseline.Auth.byz_forge ~value:"evil" ~ts_boost:9) ];
    }

let fast_safe_contender =
  Contender
    {
      label = "fast-safe (S=2t+2b+1)";
      semantics = "safe";
      proto = (module Baseline.Fast_safe);
      cfg = Quorum.Config.make_exn ~s:5 ~t:1 ~b:1;
      byz =
        [ (1, Baseline.Fast_safe.byz_forge_high ~value:"evil" ~ts_boost:9) ];
    }

let naive_contender =
  Contender
    {
      label = "naive-fast (strawman)";
      semantics = "none";
      proto = (module Baseline.Naive_fast);
      cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:1;
      byz =
        [ (1, Baseline.Naive_fast.byz_forge_high ~value:"ghost" ~ts_boost:9) ];
    }

let all_contenders =
  [
    safe_contender;
    regular_contender;
    regular_opt_contender;
    abd_contender;
    abd_atomic_contender;
    nonmod_contender;
    auth_contender;
    fast_safe_contender;
    naive_contender;
  ]
