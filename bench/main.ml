(* Benchmark & experiment harness.

     dune exec bench/main.exe                 # every experiment + micro
     dune exec bench/main.exe -- tables       # E1..E7
     dune exec bench/main.exe -- tables e3    # one experiment
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks

   Each experiment regenerates one artifact of the paper's evaluation
   (see DESIGN.md §4 and EXPERIMENTS.md for the paper-vs-measured
   record). *)

let experiments =
  [
    ("e1", Exp_e1.run);
    ("e2", Exp_e2.run);
    ("e3", Exp_e3.run);
    ("e4", Exp_e4.run);
    ("e5", Exp_e5.run);
    ("e6", Exp_e6.run);
    ("e7", Exp_e7.run);
    ("e8", Exp_e8.run);
    ("e9", Exp_e9.run);
    ("e10", Exp_e10.run);
    ("e11", Exp_e11.run);
    ("e12", Exp_e12.run);
    ("e13", Exp_e13.run);
    ("e14", Exp_e14.run);
    ("e15", Exp_e15.run);
    ("e16", Exp_e16.run);
    ("e17", Exp_e17.run);
    ("e18", Exp_e18.run);
    ("e19", Exp_e19.run);
    ("e20", Exp_e20.run);
  ]

let run_tables = function
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt (String.lowercase_ascii n) experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S (expected e1..e20)\n" n;
              exit 2)
        names

(* Strip a leading [--jobs N] (worker domains for the pooled
   experiments; results are byte-identical whatever N is). *)
let rec parse_jobs = function
  | "--jobs" :: n :: rest | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
          Exp_common.jobs := Some j;
          parse_jobs rest
      | _ ->
          Printf.eprintf "--jobs expects a positive integer (got %S)\n" n;
          exit 2)
  | args -> args

let () =
  match parse_jobs (List.tl (Array.to_list Sys.argv)) with
  | "tables" :: rest -> run_tables rest
  | "micro" :: _ -> Micro.run ()
  | [] ->
      run_tables [];
      Micro.run ()
  | cmd :: _ ->
      Printf.eprintf
        "usage: main.exe [--jobs N] [tables [e1..e20] | micro] (got %S)\n" cmd;
      exit 2
