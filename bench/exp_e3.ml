(* E3 -- the regular storage (Figures 5-6) and the S5.1 optimization.

   Round census mirrors E2; the second table measures reply size (in
   abstract words delivered to readers) as the write history grows --
   the full-history protocol grows linearly, the cached/suffix variant
   stays flat. *)

let delay = Sim.Delay.uniform ~lo:1 ~hi:10

let census () =
  let table =
    Stats.Table.create
      ~headers:
        [
          "variant"; "t"; "b"; "faults"; "ops"; "wr rnds"; "rd rnds (max)";
          "fast reads"; "regular?";
        ]
  in
  List.iter
    (fun (t, b) ->
      let cfg = Quorum.Config.optimal ~t ~b in
      List.iter
        (fun (label, proto) ->
          List.iter
            (fun (fname, use_byz) ->
              let contender =
                Exp_common.Contender
                  {
                    label;
                    semantics = "regular";
                    proto;
                    cfg;
                    byz =
                      List.init b (fun i ->
                          ( i + 1,
                            Fault.Strategies.forge_history ~value:"evil"
                              ~ts_boost:9 ));
                  }
              in
              let schedule =
                Workload.Generate.sequential ~writes:5 ~readers:2 ~gap:60
              in
              let s =
                Exp_common.run ~seed:(t + (7 * b)) ~delay ~crashes:[] ~use_byz
                  contender schedule
              in
              Stats.Table.add_row table
                [
                  label;
                  Stats.Table.cell_int t;
                  Stats.Table.cell_int b;
                  fname;
                  Printf.sprintf "%d/%d" s.completed s.total;
                  Stats.Table.cell_int s.write_rounds_max;
                  Stats.Table.cell_int s.read_rounds_max;
                  Printf.sprintf "%.0f%%" (100.0 *. s.fast_read_fraction);
                  Stats.Table.cell_bool s.regular;
                ])
            [ ("none", false); ("byz b", true) ])
        [
          ( "regular",
            (module Core.Proto_regular.Plain
            : Core.Protocol_intf.S with type msg = Core.Messages.t) );
          ("regular-opt", (module Core.Proto_regular.Optimized));
        ];
      Stats.Table.add_separator table)
    [ (1, 1); (2, 2) ];
  Exp_common.print_table table

let reply_growth () =
  Exp_common.note "";
  Exp_common.note
    "Reply-size growth with history length (words delivered to readers):";
  let table =
    Stats.Table.create
      ~headers:
        [
          "writes"; "reads"; "regular words"; "opt words"; "ratio";
          "regular w/read"; "opt w/read";
        ]
  in
  List.iter
    (fun writes ->
      let schedule =
        List.concat
          (List.init writes (fun i ->
               [
                 (i * 100, Core.Schedule.Write (Workload.Generate.payload (i + 1)));
                 ((i * 100) + 50, Core.Schedule.Read { reader = 1 });
               ]))
      in
      let reads = writes in
      let run proto =
        let contender =
          Exp_common.Contender
            {
              label = "x";
              semantics = "regular";
              proto;
              cfg = Exp_common.core_cfg;
              byz = [];
            }
        in
        (Exp_common.run ~seed:9 ~delay ~crashes:[] ~use_byz:false contender
           schedule)
          .words_to_readers
      in
      let plain =
        run
          (module Core.Proto_regular.Plain
          : Core.Protocol_intf.S with type msg = Core.Messages.t)
      in
      let opt = run (module Core.Proto_regular.Optimized) in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int writes;
          Stats.Table.cell_int reads;
          Stats.Table.cell_int plain;
          Stats.Table.cell_int opt;
          Stats.Table.cell_float (float_of_int plain /. float_of_int (max 1 opt));
          Stats.Table.cell_float (float_of_int plain /. float_of_int reads);
          Stats.Table.cell_float (float_of_int opt /. float_of_int reads);
        ])
    [ 2; 5; 10; 20; 40; 80 ];
  Exp_common.print_table table;
  Exp_common.note
    "Expected shape: the unoptimized column grows quadratically in total";
  Exp_common.note
    "(linearly per read); the S5.1 column stays near-constant per read."

let run () =
  Exp_common.section "E3: regular storage (Figures 5-6) + S5.1 optimization";
  census ();
  reply_growth ()
