(* E4 -- the cross-protocol comparison behind the paper's S1 positioning:
   rounds, resilience and robustness of every implementation side by
   side, under crash-only and Byzantine fault mixes. *)

let delay = Sim.Delay.uniform ~lo:1 ~hi:10

let schedule seed =
  let rng = Sim.Prng.create ~seed in
  Core.Schedule.merge
    (Workload.Generate.sequential ~writes:4 ~readers:2 ~gap:80)
    (Workload.Generate.read_mostly ~rng ~writes:0 ~readers:2 ~reads_per_reader:4
       ~horizon:1100)

let crash_plan (c : Exp_common.contender) =
  (* crash one object, within every contender's t >= 1 budget *)
  let cfg = Exp_common.config c in
  if cfg.Quorum.Config.t >= 1 then [ (Sim.Proc_id.Obj cfg.Quorum.Config.s, 120) ]
  else []

let run () =
  Exp_common.section "E4: cross-protocol comparison (paper S1 positioning)";
  let table =
    Stats.Table.create
      ~headers:
        [
          "protocol"; "S"; "t"; "b"; "semantics"; "wr rnds"; "rd rnds max";
          "rd rnds mean"; "crash: safe?"; "byz: safe?"; "byz: violations";
        ]
  in
  List.iter
    (fun contender ->
      let cfg = Exp_common.config contender in
      let crash =
        Exp_common.run ~seed:41 ~delay ~crashes:(crash_plan contender)
          ~use_byz:false contender (schedule 41)
      in
      let byz =
        Exp_common.run ~seed:42 ~delay ~crashes:[] ~use_byz:true contender
          (schedule 42)
      in
      Stats.Table.add_row table
        [
          Exp_common.label contender;
          Stats.Table.cell_int cfg.Quorum.Config.s;
          Stats.Table.cell_int cfg.Quorum.Config.t;
          Stats.Table.cell_int cfg.Quorum.Config.b;
          Exp_common.semantics contender;
          Stats.Table.cell_int (max crash.write_rounds_max byz.write_rounds_max);
          Stats.Table.cell_int (max crash.read_rounds_max byz.read_rounds_max);
          Stats.Table.cell_float byz.read_rounds_mean;
          Stats.Table.cell_bool crash.safe;
          Stats.Table.cell_bool byz.safe;
          Stats.Table.cell_int byz.safety_violations;
        ])
    Exp_common.all_contenders;
  Exp_common.print_table table;
  (* The round gap, made visible: a Byzantine forger plus one slow honest
     object -- the non-modifying reader re-polls until the straggler
     breaks the tie; the Figure 4 reader stays within two rounds. *)
  Exp_common.note "";
  Exp_common.note
    "Straggler amplification (byz forger + one 30x-slow honest object):";
  let straggler_table =
    Stats.Table.create
      ~headers:[ "protocol"; "rd rounds max"; "rd latency max"; "safe?" ]
  in
  let slow =
    Sim.Delay.slow_process
      ~slow:(Sim.Proc_id.Set.singleton (Sim.Proc_id.Obj 4))
      ~factor:30
      (Sim.Delay.uniform ~lo:1 ~hi:10)
  in
  let sched =
    [
      (0, Core.Schedule.Write (Core.Value.v "v1"));
      (150, Core.Schedule.Read { reader = 1 });
      (600, Core.Schedule.Read { reader = 1 });
    ]
  in
  List.iter
    (fun contender ->
      let s =
        Exp_common.run ~seed:33 ~delay:slow ~crashes:[] ~use_byz:true contender
          sched
      in
      Stats.Table.add_row straggler_table
        [
          Exp_common.label contender;
          Stats.Table.cell_int s.read_rounds_max;
          (if Stats.Summary.count s.read_latency = 0 then "-"
           else Stats.Table.cell_float ~decimals:0 (Stats.Summary.max s.read_latency));
          Stats.Table.cell_bool s.safe;
        ])
    [ Exp_common.nonmod_contender; Exp_common.safe_contender;
      Exp_common.regular_contender ];
  Exp_common.print_table straggler_table;
  Exp_common.note
    "Expected shape: the paper's protocols and nonmod stay safe under b";
  Exp_common.note
    "Byzantine objects at S = 2t+b+1; nonmod pays for it with extra read";
  Exp_common.note
    "phases; ABD (designed for b = 0) and the naive fast strawman are broken;";
  Exp_common.note
    "the authenticated baseline is safe with 1-round operations, which is";
  Exp_common.note "why the paper insists on unauthenticated data."
