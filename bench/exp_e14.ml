(* E14 -- live-cluster latency and throughput over loopback sockets.

   The simulator's E1..E12 measure rounds in virtual time; E14 runs the
   same protocols against real servers (lib/net) and reports wall-clock
   microseconds: how fast is a very robust read when the quorum is made
   of sockets rather than function calls?

   For each (protocol, configuration) cell:

   1. fault-free WRITE latency (p50/p99 over E14_WRITES writes);
   2. fault-free READ latency and throughput from one reader
      (p50/p99/mean over E14_OPS reads), plus the fraction of reads
      that finished in a single round — the paper's fast-read rate,
      now measured over a transport that can actually reorder replies;
   3. aggregate READ throughput with each reader count in E14_READERS
      driving the cluster concurrently from its own thread.

   One JSON artifact: BENCH_e14.json.  Scale is environment-tunable so
   CI can run a smoke version:
     E14_OPS      (300)        reads per latency cell
     E14_WRITES   (20)         writes per latency cell
     E14_CFGS     (4:1:0,7:2:1) comma-separated s:t:b cells
     E14_READERS  (1,2,4)      concurrent-reader sweep
     E14_OUT      (BENCH_e14.json) output path *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "%s expects a positive integer (got %S)\n" name s;
          exit 2)
  | None -> default

let getenv_list name default parse =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match parse (String.trim x) with
             | Some v -> v
             | None ->
                 Printf.eprintf "%s: cannot parse %S\n" name s;
                 exit 2)

let cfgs () =
  getenv_list "E14_CFGS"
    [ (4, 1, 0); (7, 2, 1) ]
    (fun s ->
      match String.split_on_char ':' s |> List.map int_of_string_opt with
      | [ Some s; Some t; Some b ] -> Some (s, t, b)
      | _ -> None)

let reader_counts () =
  getenv_list "E14_READERS" [ 1; 2; 4 ] (fun s ->
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let protocols =
  [ Net.Protocols.safe; Net.Protocols.regular; Net.Protocols.abd ]

let ok_exn what = function
  | Ok o -> o
  | Error e ->
      Printf.eprintf "E14: %s failed: %s\n" what e;
      exit 1

let summary_json buf label (s : Stats.Summary.t) =
  Printf.bprintf buf
    "\"%s\": { \"count\": %d, \"p50_us\": %.0f, \"p99_us\": %.0f, \
     \"mean_us\": %.1f, \"max_us\": %.0f }"
    label (Stats.Summary.count s)
    (Stats.Summary.percentile s 50.)
    (Stats.Summary.percentile s 99.)
    (Stats.Summary.mean s) (Stats.Summary.max s)

let run () =
  let ops = getenv_int "E14_OPS" 300 in
  let writes = getenv_int "E14_WRITES" 20 in
  let out = Option.value (Sys.getenv_opt "E14_OUT") ~default:"BENCH_e14.json" in
  let reader_counts = reader_counts () in
  let max_readers = List.fold_left max 1 reader_counts in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e14\",\n  \"transport\": \"unix\",\n  \
     \"ops\": %d,\n  \"writes\": %d,\n  \"cells\": [\n"
    ops writes;
  let cells = List.concat_map (fun p -> List.map (fun c -> (p, c)) (cfgs ())) protocols in
  Exp_common.note
    "E14: live-cluster latency/throughput (%d cells, %d reads each)"
    (List.length cells) ops;
  List.iteri
    (fun ci (protocol, (s, t, b)) ->
      let name = Net.Protocols.name protocol in
      let cfg = Quorum.Config.make_exn ~s ~t ~b in
      let cluster =
        Net.Cluster.start ~protocol ~cfg ~readers:max_readers ()
      in
      Fun.protect
        ~finally:(fun () -> Net.Cluster.stop cluster)
        (fun () ->
          (* 1. write latency *)
          let wlat = Stats.Summary.create () in
          for i = 1 to writes do
            let o =
              ok_exn
                (Printf.sprintf "%s write %d" name i)
                (Net.Cluster.write cluster
                   (Core.Value.v (Printf.sprintf "v%d" i)))
            in
            Stats.Summary.add_int wlat o.latency_us
          done;
          (* 2. single-reader read latency + fast-read fraction *)
          let rlat = Stats.Summary.create () in
          let fast = ref 0 in
          let t0 = Unix.gettimeofday () in
          for i = 1 to ops do
            let o =
              ok_exn
                (Printf.sprintf "%s read %d" name i)
                (Net.Cluster.read cluster ~reader:1)
            in
            Stats.Summary.add_int rlat o.latency_us;
            if o.rounds = 1 then incr fast
          done;
          let wall = Unix.gettimeofday () -. t0 in
          (* 3. concurrent-reader throughput *)
          let sweep =
            List.map
              (fun r ->
                let per = max 1 (ops / r) in
                let failures = Atomic.make 0 in
                let body j () =
                  for _ = 1 to per do
                    match Net.Cluster.read cluster ~reader:j with
                    | Ok _ -> ()
                    | Error _ -> Atomic.incr failures
                  done
                in
                let t0 = Unix.gettimeofday () in
                let threads =
                  List.init r (fun j -> Thread.create (body (j + 1)) ())
                in
                List.iter Thread.join threads;
                let wall = Unix.gettimeofday () -. t0 in
                if Atomic.get failures > 0 then begin
                  Printf.eprintf "E14: %s: %d concurrent reads failed\n" name
                    (Atomic.get failures);
                  exit 1
                end;
                (r, r * per, wall))
              reader_counts
          in
          Exp_common.note
            "  %-12s %s  read p50=%.0fus p99=%.0fus  %.0f ops/s  fast=%.0f%%"
            name
            (Quorum.Config.to_string cfg)
            (Stats.Summary.percentile rlat 50.)
            (Stats.Summary.percentile rlat 99.)
            (float_of_int ops /. wall)
            (100. *. float_of_int !fast /. float_of_int ops);
          Printf.bprintf buf
            "    { \"protocol\": \"%s\", \"s\": %d, \"t\": %d, \"b\": %d,\n      "
            name s t b;
          summary_json buf "write" wlat;
          Buffer.add_string buf ",\n      ";
          summary_json buf "read" rlat;
          Printf.bprintf buf
            ",\n      \"read_ops_per_s\": %.1f, \"fast_read_fraction\": %.3f,\n"
            (float_of_int ops /. wall)
            (float_of_int !fast /. float_of_int ops);
          Printf.bprintf buf "      \"concurrent\": [\n";
          List.iteri
            (fun i (r, n, wall) ->
              Printf.bprintf buf
                "        { \"readers\": %d, \"ops\": %d, \"wall_s\": %.4f, \
                 \"ops_per_s\": %.1f }%s\n"
                r n wall
                (float_of_int n /. wall)
                (if i = List.length sweep - 1 then "" else ","))
            sweep;
          Printf.bprintf buf "      ] }%s\n"
            (if ci = List.length cells - 1 then "" else ",")))
    cells;
  Printf.bprintf buf "  ]\n}\n";
  Obs.Export.write_file ~path:out (Buffer.contents buf);
  Exp_common.note "wrote %s" out
