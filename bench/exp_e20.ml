(* E20 -- hot-key read coalescing: ops/s and latency vs popularity skew
   with coalescing off/on.

   E19 showed skew HURTS: a hot key serializes its reads behind one
   per-key automaton, so the hotter the keyspace the longer the queue.
   PR 10's coalescing inverts that: reads that arrive while a round-1
   broadcast for the same key is still being assembled join that round
   and adopt its result, so a hot key amortizes one quorum round over
   many logical reads.  E20 measures exactly that inversion on a small
   hot keyspace: for each skew in {0, 0.9, 0.99, 1.2} run the same
   workload with --coalesce off (cap 1) and on (cap E20_COALESCE),
   and report per-cell:

   1. throughput: total ops/s across client domains, latency p50/p99;
   2. coalescing: op.coalesced_reads and the op.coalesce_width
      histogram (observed once per batch member, so p50 > 1 means most
      reads shared a round) -- present only in on-cells;
   3. correctness: client domain 0 records a sampled key subset
      (including the hot keys, where coalescing concentrates) into
      per-key histories; each must pass the single-register safety AND
      regularity checkers.  Joined reads record under fresh reader ids
      so the histories genuinely contain the concurrent-read structure
      coalescing creates;
   4. fast reads: the cell runs regular-gc at S = 3 = 2t+2b+1, so the
      one-round path must engage on every shard that served reads --
      coalescing and fast reads compose (a width-k batch is one
      one-round RPC serving k reads);
   5. partitioning: Server.partition_violations must stay 0.

   Verdict fields: "width_p50_gt_1" (every on-cell at skew >= 0.9 has
   coalesce-width p50 above its lowest bucket), "speedup_0_99" (on/off
   ops/s ratio at skew 0.99; the roadmap gate is >= 1.3), and
   "skew_helps" (with coalescing on, the best skewed cell beats the
   uniform cell -- the E19 trend inverted).

   One JSON artifact: BENCH_e20.json.  Environment-tunable:
     E20_OPS         (3000)            ops per client domain per cell
     E20_KEYS        (256)             key universe (small and hot)
     E20_SKEWS       (0,0.9,0.99,1.2)  zipf skew sweep
     E20_COALESCE    (64)              batch cap in the on-cells
     E20_CLIENTS     (2)               client load domains
     E20_INFLIGHT    (64)              operation window per client domain
     E20_DOMAINS     (2)               server worker domains
     E20_FLEET       (4)               fleet size (>= S = 3)
     E20_WRITE_RATIO (0.04)            write fraction of the mix
     E20_SAMPLE      (128)             history-sampled key-id bound
     E20_TRIALS      (2)               trials per cell; best is reported
     E20_TRANSPORT   (unix)            loopback transport: unix | tcp
     E20_OUT         (BENCH_e20.json)  output path *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "%s expects a positive integer (got %S)\n" name s;
          exit 2)
  | None -> default

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f >= 0.0 -> f
      | _ ->
          Printf.eprintf "%s expects a nonnegative float (got %S)\n" name s;
          exit 2)
  | None -> default

let getenv_list name default parse =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match parse (String.trim x) with
             | Some v -> v
             | None ->
                 Printf.eprintf "%s: cannot parse %S\n" name s;
                 exit 2)

let transport () =
  match Sys.getenv_opt "E20_TRANSPORT" with
  | None -> `Unix
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "tcp" -> `Tcp
      | "unix" -> `Unix
      | _ ->
          Printf.eprintf "E20_TRANSPORT expects tcp or unix (got %S)\n" s;
          exit 2)

let fresh_tmpdir () =
  let path = Filename.temp_file "e20" "" in
  Unix.unlink path;
  Unix.mkdir path 0o700;
  path

let summary_json buf label (s : Stats.Summary.t) =
  Printf.bprintf buf
    "\"%s\": { \"count\": %d, \"p50_us\": %.0f, \"p99_us\": %.0f, \
     \"mean_us\": %.1f, \"max_us\": %.0f }"
    label (Stats.Summary.count s)
    (Stats.Summary.percentile s 50.)
    (Stats.Summary.percentile s 99.)
    (Stats.Summary.mean s) (Stats.Summary.max s)

let to_kop = function
  | Workload.Keyspace.Read { key } -> Net.Client.Keyed.Read { key }
  | Workload.Keyspace.Write { key; value } ->
      Net.Client.Keyed.Write { key; value }

(* One measured pass: every client domain draws its ops (untimed), spins
   on the barrier, then drives them through its keyed mux; the cell's
   wall-clock is the slowest domain's. *)
let timed_pass ~keyeds ~gens ~ops ~record0 =
  let n = Array.length keyeds in
  let barrier = Atomic.make 0 in
  let body c () =
    let kops = Array.map to_kop (Workload.Keyspace.ops gens.(c) ops) in
    Atomic.incr barrier;
    while Atomic.get barrier < n do
      Domain.cpu_relax ()
    done;
    let t0 = Unix.gettimeofday () in
    let results =
      if c = 0 then
        Net.Client.Keyed.run_ops ~on_event:(record0 kops) keyeds.(c) kops
      else Net.Client.Keyed.run_ops keyeds.(c) kops
    in
    (Unix.gettimeofday () -. t0, results)
  in
  let doms = Array.init n (fun c -> Domain.spawn (body c)) in
  Array.map Domain.join doms

let run () =
  let ops = getenv_int "E20_OPS" 3000 in
  let keys = getenv_int "E20_KEYS" 256 in
  let coalesce_on = getenv_int "E20_COALESCE" 64 in
  let clients = getenv_int "E20_CLIENTS" 2 in
  let inflight = getenv_int "E20_INFLIGHT" 64 in
  let domains = getenv_int "E20_DOMAINS" 2 in
  let fleet = getenv_int "E20_FLEET" 4 in
  let write_ratio = getenv_float "E20_WRITE_RATIO" 0.04 in
  let sample_bound = getenv_int "E20_SAMPLE" 128 in
  let trials = getenv_int "E20_TRIALS" 2 in
  let out = Option.value (Sys.getenv_opt "E20_OUT") ~default:"BENCH_e20.json" in
  let skews =
    getenv_list "E20_SKEWS" [ 0.0; 0.9; 0.99; 1.2 ] (fun s ->
        match float_of_string_opt s with
        | Some f when f >= 0.0 && Float.is_finite f -> Some f
        | _ -> None)
  in
  let transport = transport () in
  let transport_name = match transport with `Tcp -> "tcp" | `Unix -> "unix" in
  (* S = 3 = 2t+2b+1 at t=1, b=0: the lower bound admits one-round
     reads, so coalesced batches ride the fast path. *)
  let cfg = Quorum.Config.make_exn ~s:3 ~t:1 ~b:0 in
  let protocol = Net.Protocols.regular_gc ~readers:clients in
  if fleet < cfg.Quorum.Config.s then begin
    Printf.eprintf "E20_FLEET must be >= S = %d\n" cfg.Quorum.Config.s;
    exit 2
  end;
  let cores = Domain.recommended_domain_count () in
  let total_ops = clients * ops in
  Exp_common.note
    "E20: hot-key coalescing (%d cores; %d keys; skews {%s}; coalesce \
     {off,%d}; fleet %d, %d server domains; %d client domains x window %d x \
     %d ops; write ratio %.2f; best of %d; %s loopback)"
    cores keys
    (String.concat "," (List.map (Printf.sprintf "%g") skews))
    coalesce_on fleet domains clients inflight ops write_ratio trials
    transport_name;
  let buf = Buffer.create 8192 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e20\",\n  \"transport\": \"%s\",\n  \
     \"protocol\": \"%s\",\n  \"s\": %d, \"t\": 1, \"b\": 0,\n  \"fleet\": \
     %d,\n  \"server_domains\": %d,\n  \"cores\": %d,\n  \"clients\": %d,\n  \
     \"inflight\": %d,\n  \"ops_per_client\": %d,\n  \"keys\": %d,\n  \
     \"coalesce_cap\": %d,\n  \"write_ratio\": %g,\n  \"trials\": %d,\n  \
     \"cells\": [\n"
    transport_name
    (Net.Protocols.name protocol)
    cfg.Quorum.Config.s fleet domains cores clients inflight ops keys
    coalesce_on write_ratio trials;
  let violations_total = ref 0 in
  let partition_total = ref 0 in
  let fast_all = ref true in
  (* (skew, coalesce cap, ops/s, coalesce-width p50 if observed) per
     cell, for the verdict fields. *)
  let outcomes = ref [] in
  let cells =
    List.concat_map (fun z -> [ (z, 1); (z, coalesce_on) ]) skews
  in
  List.iteri
    (fun ci (skew, coalesce) ->
      let dir = fresh_tmpdir () in
      let endpoints =
        match transport with
        | `Unix ->
            Array.init fleet (fun i ->
                Net.Endpoint.Unix_sock
                  (Filename.concat dir (Printf.sprintf "obj%d.sock" (i + 1))))
        | `Tcp ->
            Array.init fleet (fun _ ->
                Net.Endpoint.Tcp { host = "127.0.0.1"; port = 0 })
      in
      let registries = Array.init fleet (fun _ -> Obs.Metrics.create ()) in
      let servers =
        Net.Server.start_group
          ~metrics:(fun i -> registries.(i))
          ~domains ~protocol ~cfg endpoints
      in
      let actual = Array.map Net.Server.endpoint servers in
      let map = Shard.Map.make_exn ~keys ~fleet ~cfg () in
      let origin = Unix.gettimeofday () in
      let now_us () = int_of_float ((Unix.gettimeofday () -. origin) *. 1e6) in
      let client_regs = Array.init clients (fun _ -> Obs.Metrics.create ()) in
      let keyeds =
        Array.init clients (fun c ->
            Net.Client.Keyed.connect ~metrics:client_regs.(c) ~now_us
              ~max_inflight:inflight ~reader:(c + 1) ~coalesce ~protocol ~map
              actual)
      in
      (* Disjoint write ownership across client domains (SWMR per key). *)
      let owner k = Shard.Map.mix k mod clients in
      let gens =
        Array.init clients (fun c ->
            Workload.Keyspace.make_exn ~skew ~write_ratio
              ~write_filter:(fun k -> owner k = c)
              ~keys
              ~seed:(42 + (1_000 * ci) + c)
              ())
      in
      (* Client domain 0 records a sampled key subset: keys IT OWNS (so
         every write to a sampled key is in the history) with small ids
         (where zipf concentrates the traffic, i.e. where coalescing
         actually happens).  Each sampled key gets its own recorder.
         Lead ops key on (key, write) exactly as in E19 -- per-key FIFO
         means at most one is open at a time.  Joined reads are
         concurrent by construction, so each records under a fresh
         reader id and its handle keys on the op index. *)
      let sampled k = k < sample_bound && owner k = 0 in
      let recorders : (int, string Histories.Recorder.t) Hashtbl.t =
        Hashtbl.create 64
      in
      let open_ops : (int * bool, Histories.Recorder.op_handle) Hashtbl.t =
        Hashtbl.create 64
      in
      let open_joined : (int, Histories.Recorder.op_handle) Hashtbl.t =
        Hashtbl.create 64
      in
      let next_jrid = ref 1_000_000 in
      let rec_mutex = Mutex.create () in
      let recorder_for key =
        match Hashtbl.find_opt recorders key with
        | Some r -> r
        | None ->
            let r = Histories.Recorder.create () in
            Hashtbl.replace recorders key r;
            r
      in
      let record0 kops ev =
        Mutex.lock rec_mutex;
        (try
           (match ev with
           | Net.Client.Keyed.Invoke { op; key; at_us; joined = true; _ } ->
               if sampled key then begin
                 let jrid = !next_jrid in
                 incr next_jrid;
                 Hashtbl.replace open_joined op
                   (Histories.Recorder.invoke_read (recorder_for key)
                      ~time:at_us ~reader:jrid)
               end
           | Net.Client.Keyed.Respond
               { op; key; at_us; outcome; joined = true; _ } ->
               if sampled key then begin
                 match Hashtbl.find_opt open_joined op with
                 | None -> ()
                 | Some h -> (
                     Hashtbl.remove open_joined op;
                     match outcome with
                     | Error _ -> ()  (* never resumed: the op stays open *)
                     | Ok o ->
                         let result =
                           match o.Net.Client.value with
                           | Some Core.Value.Bottom | None -> Histories.Op.Bottom
                           | Some (Core.Value.V v) -> Histories.Op.Value v
                         in
                         Histories.Recorder.respond_read (recorder_for key) h
                           ~time:at_us result)
               end
           | Net.Client.Keyed.Invoke { op; key; write; at_us; joined = false }
             ->
               if sampled key then begin
                 match Hashtbl.find_opt open_ops (key, write) with
                 | Some _ -> ()  (* resumed op: invocation stands *)
                 | None ->
                     let r = recorder_for key in
                     let h =
                       if write then
                         let v =
                           match kops.(op) with
                           | Net.Client.Keyed.Write { value; _ } ->
                               Core.Value.to_string value
                           | Net.Client.Keyed.Read _ -> assert false
                         in
                         Histories.Recorder.invoke_write r ~time:at_us v
                       else Histories.Recorder.invoke_read r ~time:at_us ~reader:1
                     in
                     Hashtbl.replace open_ops (key, write) h
               end
           | Net.Client.Keyed.Respond
               { key; write; at_us; outcome; joined = false; _ } ->
               if sampled key then begin
                 match outcome with
                 | Error _ -> ()
                 | Ok o -> (
                     match Hashtbl.find_opt open_ops (key, write) with
                     | None -> ()
                     | Some h ->
                         Hashtbl.remove open_ops (key, write);
                         let r = recorder_for key in
                         if write then
                           Histories.Recorder.respond_write r h ~time:at_us
                         else
                           let result =
                             match o.Net.Client.value with
                             | Some Core.Value.Bottom | None ->
                                 Histories.Op.Bottom
                             | Some (Core.Value.V v) -> Histories.Op.Value v
                           in
                           Histories.Recorder.respond_read r h ~time:at_us
                             result)
               end)
         with e ->
           Mutex.unlock rec_mutex;
           raise e);
        Mutex.unlock rec_mutex
      in
      (* Untimed warmup, reads only: a warmup write on a sampled key
         would be invisible to the recorded history. *)
      let warm_gens =
        Array.init clients (fun c ->
            Workload.Keyspace.make_exn ~skew ~write_ratio:0.0 ~keys
              ~seed:(7 + c) ())
      in
      ignore
        (timed_pass ~keyeds ~gens:warm_gens ~ops:(Stdlib.min 200 ops)
           ~record0:(fun _ _ -> ()));
      let failures = ref 0 in
      let best = ref None in
      for trial = 1 to trials do
        let passes = timed_pass ~keyeds ~gens ~ops ~record0 in
        let wall = Array.fold_left (fun m (w, _) -> Float.max m w) 0. passes in
        let lat = Stats.Summary.create () in
        let reads = ref 0 and fast = ref 0 and writes = ref 0 in
        Array.iter
          (fun (_, results) ->
            Array.iter
              (function
                | Ok (o : Net.Client.outcome) -> (
                    Stats.Summary.add_int lat o.latency_us;
                    match o.value with
                    | Some _ ->
                        incr reads;
                        if o.rounds <= 1 then incr fast
                    | None -> incr writes)
                | Error e ->
                    incr failures;
                    Printf.eprintf "E20: op failed: %s\n" e)
              results)
          passes;
        let rate = float_of_int total_ops /. wall in
        Exp_common.note
          "  skew=%-4g coalesce=%-3d trial=%d  %8.0f ops/s  p50=%.0fus \
           p99=%.0fus  fast %d/%d reads"
          skew coalesce trial rate
          (Stats.Summary.percentile lat 50.)
          (Stats.Summary.percentile lat 99.)
          !fast !reads;
        match !best with
        | Some (_, r, _, _) when r >= rate -> ()
        | _ -> best := Some (wall, rate, lat, (!reads, !fast, !writes))
      done;
      let touched =
        Array.fold_left
          (fun acc k -> acc + Net.Client.Keyed.keys_touched k)
          0 keyeds
      in
      Array.iter Net.Client.Keyed.close keyeds;
      Array.iter Net.Server.stop servers;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      let partition = Net.Server.partition_violations servers.(0) in
      (* Per-key histories: every sampled key must pass the paper's
         single-register checkers.  In on-cells these histories contain
         genuinely concurrent joined reads. *)
      let sampled_keys = Hashtbl.length recorders in
      let violations =
        Hashtbl.fold
          (fun _key r acc ->
            let h = Histories.Recorder.ops r in
            (if Histories.Checks.is_safe ~equal:String.equal h then acc
             else acc + 1)
            + if Histories.Checks.is_regular ~equal:String.equal h then 0
              else 1)
          recorders 0
      in
      violations_total := !violations_total + violations;
      partition_total := !partition_total + partition;
      let merged = Obs.Metrics.create () in
      Array.iter (fun r -> Obs.Metrics.merge_into ~dst:merged r) registries;
      Array.iter (fun r -> Obs.Metrics.merge_into ~dst:merged r) client_regs;
      (* Fast-read engagement per shard, from the keyed clients'
         shard.<i>.* counters. *)
      let shards_with_reads = ref 0 and shards_fast = ref 0 in
      for sh = 0 to Shard.Map.shards map - 1 do
        let reads =
          Obs.Metrics.counter_value merged (Printf.sprintf "shard.%d.reads" sh)
        in
        let fast =
          Obs.Metrics.counter_value merged
            (Printf.sprintf "shard.%d.fast_reads" sh)
        in
        if reads > 0 then begin
          incr shards_with_reads;
          if fast > 0 then incr shards_fast
        end
      done;
      if !shards_with_reads = 0 || !shards_fast < !shards_with_reads then
        fast_all := false;
      let wall, rate, lat, (reads, fast, wrts) =
        match !best with
        | Some b -> b
        | None -> (0., 0., Stats.Summary.create (), (0, 0, 0))
      in
      let coalesced_reads =
        Obs.Metrics.counter_value merged "op.coalesced_reads"
      in
      let width = Obs.Metrics.find_histogram merged "op.coalesce_width" in
      let width_p50 =
        match width with
        | Some h when Obs.Metrics.Histogram.count h > 0 ->
            Some (Obs.Metrics.Histogram.quantile h 50.)
        | _ -> None
      in
      outcomes := (skew, coalesce, rate, width_p50) :: !outcomes;
      Printf.bprintf buf
        "    { \"skew\": %g, \"coalesce\": %d, \"ops\": %d, \"wall_s\": \
         %.4f, \"ops_per_s\": %.1f,\n      "
        skew coalesce total_ops wall rate;
      summary_json buf "latency" lat;
      Printf.bprintf buf
        ",\n      \"reads\": %d, \"fast_reads\": %d, \"writes\": %d, \
         \"failures\": %d,\n      \"coalesced_reads\": %d,\n      "
        reads fast wrts !failures coalesced_reads;
      (match width with
      | Some h when Obs.Metrics.Histogram.count h > 0 ->
          Printf.bprintf buf
            "\"coalesce_width\": { \"count\": %d, \"p50\": %g, \"p99\": %g, \
             \"mean\": %.2f }"
            (Obs.Metrics.Histogram.count h)
            (Obs.Metrics.Histogram.quantile h 50.)
            (Obs.Metrics.Histogram.quantile h 99.)
            (Obs.Metrics.Histogram.mean h)
      | _ -> Printf.bprintf buf "\"coalesce_width\": null");
      Printf.bprintf buf
        ",\n      \"keys_touched\": %d, \"sampled_keys\": %d, \
         \"violations\": %d, \"partition_violations\": %d,\n      \
         \"shards_with_reads\": %d, \"shards_fast\": %d }%s\n"
        touched sampled_keys violations partition !shards_with_reads
        !shards_fast
        (if ci = List.length cells - 1 then "" else ","))
    cells;
  (* Verdicts. *)
  let outcomes = !outcomes in
  let rate_at skew coalesce =
    List.find_map
      (fun (z, c, r, _) -> if z = skew && c = coalesce then Some r else None)
      outcomes
  in
  let hot_on =
    List.filter (fun (z, c, _, _) -> z >= 0.9 && c > 1) outcomes
  in
  let width_p50_gt_1 =
    hot_on <> []
    && List.for_all
         (fun (_, _, _, p) -> match p with Some p -> p > 1.0 | None -> false)
         hot_on
  in
  let speedup_0_99 =
    match (rate_at 0.99 coalesce_on, rate_at 0.99 1) with
    | Some on, Some off when off > 0.0 -> Some (on /. off)
    | _ -> None
  in
  let skew_helps =
    match rate_at 0.0 coalesce_on with
    | None -> false
    | Some uniform ->
        List.exists (fun (z, c, r, _) -> z > 0.0 && c > 1 && r >= uniform)
          outcomes
  in
  Printf.bprintf buf "  ],\n  \"width_p50_gt_1\": %b,\n" width_p50_gt_1;
  (match speedup_0_99 with
  | Some s ->
      Printf.bprintf buf
        "  \"speedup_0_99\": %.3f,\n  \"speedup_0_99_ok\": %b,\n" s (s >= 1.3)
  | None ->
      Printf.bprintf buf
        "  \"speedup_0_99\": null,\n  \"speedup_0_99_ok\": null,\n");
  Printf.bprintf buf
    "  \"skew_helps\": %b,\n  \"fast_reads_all_shards\": %b,\n  \
     \"violations_total\": %d,\n  \"partition_violations_total\": %d\n}\n"
    skew_helps !fast_all !violations_total !partition_total;
  Obs.Export.write_file ~path:out (Buffer.contents buf);
  Exp_common.note "wrote %s" out
