(* E15 -- pipelined wire throughput: the in-flight operation window.

   The paper fixes a robust READ at two round-trips (one on the fast
   path), so once latency is wire-bound, throughput is decided by how
   many of those round-trips the runtime keeps in flight.  E15 measures
   exactly that: the serial client (one op at a time, the E14 baseline)
   against the pipelined mux at max_inflight in E15_INFLIGHT, over both
   server loop modes.

   For each (loop mode) cell on a loopback cluster (safe protocol,
   S=4 t=1 b=0):

   1. serial baseline: E15_OPS reads through Cluster.read, wall-clock
      ops/s and p50/p99 latency;
   2. pipelined sweep: E15_OPS reads through Cluster.read_pipelined at
      each window size, same measures, plus failure counts;
   3. correctness: every pipelined op must return the value the serial
      reads returned (matches_serial) and the full recorded history must
      pass the safety/regularity checkers (violations = 0).

   Rates on a shared box jitter by +/-20%, so each timing cell is run
   E15_TRIALS times and the best trial is reported (standard practice
   for throughput floors: the best trial is the one least disturbed by
   unrelated machine noise).  Correctness accounting — mismatches,
   failures, history checks — always covers every trial, not just the
   reported one.

   One JSON artifact: BENCH_e15.json.  Environment-tunable:
     E15_OPS       (2000)          reads per timing cell
     E15_INFLIGHT  (1,4,16,64)     operation-window sweep
     E15_LOOPS     (threads,poll)  server loop modes to measure
     E15_TRIALS    (3)             trials per cell; best is reported
     E15_TRANSPORT (tcp)           loopback transport: tcp | unix
     E15_OUT       (BENCH_e15.json) output path *)

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf "%s expects a positive integer (got %S)\n" name s;
          exit 2)
  | None -> default

let getenv_list name default parse =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match parse (String.trim x) with
             | Some v -> v
             | None ->
                 Printf.eprintf "%s: cannot parse %S\n" name s;
                 exit 2)

let inflight_levels () =
  getenv_list "E15_INFLIGHT" [ 1; 4; 16; 64 ] (fun s ->
      match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)

let loop_modes () =
  getenv_list "E15_LOOPS" [ `Threads; `Poll ] Net.Server.loop_of_string

let ok_exn what = function
  | Ok o -> o
  | Error e ->
      Printf.eprintf "E15: %s failed: %s\n" what e;
      exit 1

let summary_json buf label (s : Stats.Summary.t) =
  Printf.bprintf buf
    "\"%s\": { \"count\": %d, \"p50_us\": %.0f, \"p99_us\": %.0f, \
     \"mean_us\": %.1f, \"max_us\": %.0f }"
    label (Stats.Summary.count s)
    (Stats.Summary.percentile s 50.)
    (Stats.Summary.percentile s 99.)
    (Stats.Summary.mean s) (Stats.Summary.max s)

let transport () =
  match Sys.getenv_opt "E15_TRANSPORT" with
  | None -> `Tcp
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "tcp" -> `Tcp
      | "unix" -> `Unix
      | _ ->
          Printf.eprintf "E15_TRANSPORT expects tcp or unix (got %S)\n" s;
          exit 2)

let run () =
  let ops = getenv_int "E15_OPS" 2000 in
  let trials = getenv_int "E15_TRIALS" 3 in
  let out = Option.value (Sys.getenv_opt "E15_OUT") ~default:"BENCH_e15.json" in
  let levels = inflight_levels () in
  let loops = loop_modes () in
  let transport = transport () in
  let transport_name = match transport with `Tcp -> "tcp" | `Unix -> "unix" in
  let protocol = Net.Protocols.safe in
  let cfg = Quorum.Config.make_exn ~s:4 ~t:1 ~b:0 in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e15\",\n  \"transport\": \"%s\",\n  \
     \"protocol\": \"%s\",\n  \"s\": 4, \"t\": 1, \"b\": 0,\n  \"ops\": %d,\n\
    \  \"trials\": %d,\n  \"cells\": [\n"
    transport_name
    (Net.Protocols.name protocol)
    ops trials;
  Exp_common.note
    "E15: pipelined wire throughput (%d loop modes, %d ops/cell, best of %d, \
     %s loopback)"
    (List.length loops) ops trials transport_name;
  List.iteri
    (fun li loop ->
      let loop_name = Net.Server.loop_to_string loop in
      let cluster =
        Net.Cluster.start ~transport ~loop ~protocol ~cfg ~readers:1 ()
      in
      Fun.protect
        ~finally:(fun () -> Net.Cluster.stop cluster)
        (fun () ->
          let _ =
            ok_exn "write" (Net.Cluster.write cluster (Core.Value.v "e15"))
          in
          (* warm the serial path before timing it: connections,
             automata, and branch caches are cold on the first ops *)
          for i = 1 to 100 do
            ignore
              (ok_exn
                 (Printf.sprintf "serial warmup %d" i)
                 (Net.Cluster.read cluster ~reader:1))
          done;
          (* 1. serial baseline, best of [trials] *)
          let measure_serial () =
            let slat = Stats.Summary.create () in
            let t0 = Unix.gettimeofday () in
            for i = 1 to ops do
              let o =
                ok_exn
                  (Printf.sprintf "serial read %d" i)
                  (Net.Cluster.read cluster ~reader:1)
              in
              Stats.Summary.add_int slat o.latency_us
            done;
            let wall = Unix.gettimeofday () -. t0 in
            (wall, float_of_int ops /. wall, slat)
          in
          let serial_wall, serial_rate, slat =
            let best = ref (measure_serial ()) in
            for _ = 2 to trials do
              let (_, rate, _) as m = measure_serial () in
              let _, best_rate, _ = !best in
              if rate > best_rate then best := m
            done;
            !best
          in
          (* 2. pipelined sweep: [trials] full passes over the window
             levels (interleaved, so machine drift hits all levels
             alike); per level, keep the fastest pass *)
          let mismatches = ref 0 in
          let failures_total = ref 0 in
          let best = Hashtbl.create 8 in
          for trial = 1 to trials do
            List.iter
              (fun inflight ->
                let plat = Stats.Summary.create () in
                let failures = ref 0 in
                (* untimed warmup at this window size: builds the mux
                   (connections + hellos) outside the timing window *)
                Array.iter
                  (function
                    | Ok (_ : Net.Client.outcome) -> ()
                    | Error _ -> incr failures)
                  (Net.Cluster.read_pipelined cluster ~inflight
                     ~ops:(Stdlib.min 200 ops));
                let t0 = Unix.gettimeofday () in
                let results =
                  Net.Cluster.read_pipelined cluster ~inflight ~ops
                in
                let wall = Unix.gettimeofday () -. t0 in
                Array.iter
                  (function
                    | Ok (o : Net.Client.outcome) ->
                        Stats.Summary.add_int plat o.latency_us;
                        (match o.value with
                        | Some (Core.Value.V "e15") -> ()
                        | Some _ | None -> incr mismatches)
                    | Error e ->
                        incr failures;
                        Printf.eprintf "E15: pipelined read failed: %s\n" e)
                  results;
                failures_total := !failures_total + !failures;
                let rate = float_of_int ops /. wall in
                Exp_common.note
                  "  %-7s trial=%d inflight=%-3d %8.0f ops/s  p50=%.0fus \
                   p99=%.0fus  (serial %.0f ops/s)"
                  loop_name trial inflight rate
                  (Stats.Summary.percentile plat 50.)
                  (Stats.Summary.percentile plat 99.)
                  serial_rate;
                match Hashtbl.find_opt best inflight with
                | Some (_, best_rate, _, _) when best_rate >= rate -> ()
                | _ -> Hashtbl.replace best inflight (wall, rate, plat, !failures))
              levels
          done;
          let sweep =
            List.map
              (fun inflight ->
                let wall, rate, plat, failures = Hashtbl.find best inflight in
                (inflight, wall, rate, plat, failures))
              levels
          in
          (* 3. correctness: the live history (all trials) must check out *)
          let history = Net.Cluster.history cluster in
          let violations =
            (if Histories.Checks.is_safe ~equal:String.equal history then 0
             else 1)
            + if Histories.Checks.is_regular ~equal:String.equal history then 0
              else 1
          in
          let matches_serial = !mismatches = 0 && !failures_total = 0 in
          let rate_at k =
            List.find_map
              (fun (i, _, r, _, _) -> if i = k then Some r else None)
              sweep
          in
          Printf.bprintf buf
            "    { \"loop\": \"%s\",\n      \"serial\": { \"ops\": %d, \
             \"wall_s\": %.4f, \"ops_per_s\": %.1f,\n        "
            loop_name ops serial_wall serial_rate;
          summary_json buf "latency" slat;
          Printf.bprintf buf " },\n      \"pipelined\": [\n";
          List.iteri
            (fun i (inflight, wall, rate, plat, failures) ->
              Printf.bprintf buf
                "        { \"max_inflight\": %d, \"ops\": %d, \"wall_s\": \
                 %.4f, \"ops_per_s\": %.1f, \"failures\": %d,\n          "
                inflight ops wall rate failures;
              summary_json buf "latency" plat;
              Printf.bprintf buf " }%s\n"
                (if i = List.length sweep - 1 then "" else ","))
            sweep;
          Printf.bprintf buf "      ],\n";
          (match (rate_at 1, rate_at 16) with
          | Some r1, Some r16 when r1 > 0. ->
              Printf.bprintf buf "      \"speedup_16_vs_1\": %.2f,\n"
                (r16 /. r1)
          | _ -> ());
          (match rate_at 16 with
          | Some r16 when serial_rate > 0. ->
              Printf.bprintf buf "      \"speedup_16_vs_serial\": %.2f,\n"
                (r16 /. serial_rate)
          | _ -> ());
          Printf.bprintf buf
            "      \"matches_serial\": %b,\n      \"violations\": %d }%s\n"
            matches_serial violations
            (if li = List.length loops - 1 then "" else ",")))
    loops;
  Printf.bprintf buf "  ]\n}\n";
  Obs.Export.write_file ~path:out (Buffer.contents buf);
  Exp_common.note "wrote %s" out
