(* Bechamel micro-benchmarks: throughput of the pure state machines and
   of the supporting infrastructure (B1 in DESIGN.md).  One Test.make per
   hot path; estimates are OLS ns/run on the monotonic clock. *)

open Bechamel
open Toolkit

let cfg_core = Quorum.Config.optimal ~t:1 ~b:1

(* -- fixtures ----------------------------------------------------------- *)

let safe_object_with_write () =
  let o = Core.Safe_object.init ~index:1 in
  let tsval = Core.Tsval.make ~ts:1 ~v:(Core.Value.v "payload") in
  let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
  let o, _ =
    Core.Safe_object.handle o ~src:Sim.Proc_id.Writer
      (Core.Messages.W { ts = 1; pw = tsval; w })
  in
  o

let bench_safe_object =
  Test.make ~name:"safe_object.handle READ1"
    (Staged.stage (fun () ->
         let o = safe_object_with_write () in
         Core.Safe_object.handle o ~src:(Sim.Proc_id.Reader 1)
           (Core.Messages.Read1 { tsr = 1; from_ts = 0 })))

let bench_regular_object =
  Test.make ~name:"regular_object.handle W + READ1"
    (Staged.stage (fun () ->
         let o = Core.Regular_object.init ~index:1 in
         let tsval = Core.Tsval.make ~ts:1 ~v:(Core.Value.v "payload") in
         let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
         let o, _ =
           Core.Regular_object.handle o ~src:Sim.Proc_id.Writer
             (Core.Messages.W { ts = 1; pw = tsval; w })
         in
         Core.Regular_object.handle o ~src:(Sim.Proc_id.Reader 1)
           (Core.Messages.Read1 { tsr = 1; from_ts = 0 })))

let bench_writer_round =
  Test.make ~name:"writer full 2-round write"
    (Staged.stage (fun () ->
         let w = Core.Writer.init ~cfg:cfg_core in
         match Core.Writer.start_write w (Core.Value.v "v") with
         | Error _ -> assert false
         | Ok (w, _) ->
             let ack ts = Core.Messages.Pw_ack { ts; tsr = Core.Ints.Map.empty } in
             let w, _ = Core.Writer.on_message w ~obj:1 (ack 1) in
             let w, _ = Core.Writer.on_message w ~obj:2 (ack 1) in
             let w, e = Core.Writer.on_message w ~obj:3 (ack 1) in
             (match e with
             | Core.Writer.Broadcast _ ->
                 let wa = Core.Messages.W_ack { ts = 1 } in
                 let w, _ = Core.Writer.on_message w ~obj:1 wa in
                 let w, _ = Core.Writer.on_message w ~obj:2 wa in
                 ignore (Core.Writer.on_message w ~obj:3 wa)
             | _ -> assert false)))

let bench_safe_read_fast_path =
  Test.make ~name:"safe_reader full fast read (3 acks)"
    (Staged.stage (fun () ->
         let r = Core.Safe_reader.init ~cfg:cfg_core ~j:1 () in
         match Core.Safe_reader.start_read r with
         | Error _ -> assert false
         | Ok (r, Core.Messages.Read1 { tsr; _ }) ->
             let tsval = Core.Tsval.make ~ts:1 ~v:(Core.Value.v "v") in
             let w = Core.Wtuple.make ~tsval ~tsrarray:Core.Tsr_matrix.empty in
             let ack = Core.Messages.Read1_ack { tsr; pw = tsval; w } in
             let r, _ = Core.Safe_reader.on_message r ~obj:1 ack in
             let r, _ = Core.Safe_reader.on_message r ~obj:2 ack in
             ignore (Core.Safe_reader.on_message r ~obj:3 ack)
         | Ok _ -> assert false))

let bench_end_to_end_scenario =
  let module Sc = Core.Scenario.Make (Core.Proto_safe) in
  Test.make ~name:"scenario: 1 write + 2 reads end-to-end"
    (Staged.stage (fun () ->
         ignore
           (Sc.run ~cfg:cfg_core ~seed:1 ~delay:(Sim.Delay.constant 5)
              ~faults:Sc.no_faults
              [
                (0, Core.Schedule.Write (Core.Value.v "v1"));
                (50, Core.Schedule.Read { reader = 1 });
                (100, Core.Schedule.Read { reader = 1 });
              ])))

let bench_checker =
  let history =
    let r = Histories.Recorder.create () in
    for k = 1 to 50 do
      let h = Histories.Recorder.invoke_write r ~time:(k * 10) (Printf.sprintf "v%d" k) in
      Histories.Recorder.respond_write r h ~time:((k * 10) + 5);
      let rd = Histories.Recorder.invoke_read r ~time:((k * 10) + 6) ~reader:1 in
      Histories.Recorder.respond_read r rd ~time:((k * 10) + 9)
        (Histories.Op.Value (Printf.sprintf "v%d" k))
    done;
    Histories.Recorder.ops r
  in
  Test.make ~name:"checks: regularity of 100-op history"
    (Staged.stage (fun () ->
         ignore (Histories.Checks.check_regularity ~equal:String.equal history)))

let bench_heap =
  let module H = Sim.Heap.Make (Int) in
  Test.make ~name:"heap: 256 inserts + drain"
    (Staged.stage (fun () ->
         let h = ref H.empty in
         for i = 0 to 255 do
           h := H.insert !h ((i * 7919) mod 997)
         done;
         let rec drain h = match H.pop h with None -> () | Some (_, h) -> drain h in
         drain !h))

let bench_prng =
  Test.make ~name:"prng: 1024 draws"
    (Staged.stage (fun () ->
         let g = Sim.Prng.create ~seed:1 in
         for _ = 1 to 1024 do
           ignore (Sim.Prng.int g ~bound:1000)
         done))

(* -- wire codec --------------------------------------------------------- *)

(* A READ1_ACK as the pipelined read path sees it: sender-tagged frame,
   write tuple with a populated reader-timestamp matrix. *)
let codec_fixture () =
  let codec = Net.Codec.messages in
  let row = Core.Ints.Map.add 2 5 (Core.Ints.Map.add 1 3 Core.Ints.Map.empty) in
  let tsrarray =
    List.fold_left
      (fun m obj -> Core.Tsr_matrix.set_row m ~obj row)
      Core.Tsr_matrix.empty [ 1; 2; 3; 4 ]
  in
  let ack ts =
    let tsval = Core.Tsval.make ~ts ~v:(Core.Value.v "payload") in
    let w = Core.Wtuple.make ~tsval ~tsrarray in
    Net.Codec.Msg_from
      { sender = "r3"; msg = Core.Messages.Read1_ack { tsr = 3; pw = tsval; w } }
  in
  (* encode_frame prepends the 4-byte length prefix that the Reader
     strips before decode_payload sees the bytes *)
  let payload frame =
    let s = Net.Codec.encode_frame codec frame in
    String.sub s 4 (String.length s - 4)
  in
  (codec, ack 7, payload (ack 7), payload (ack 8))

let bench_codec_encode =
  let codec, frame, _, _ = codec_fixture () in
  let out = Net.Codec.Out.create () in
  Test.make ~name:"codec: encode READ1_ACK (scratch reuse)"
    (Staged.stage (fun () ->
         Net.Codec.Out.clear out;
         Net.Codec.encode_frame_into codec out frame))

let bench_codec_decode_hot =
  let codec, _, payload, _ = codec_fixture () in
  Test.make ~name:"codec: decode READ1_ACK (interned)"
    (Staged.stage (fun () -> ignore (Net.Codec.decode_payload codec payload)))

let bench_codec_decode_cold =
  let codec, _, payload_a, payload_b = codec_fixture () in
  let flip = ref false in
  Test.make ~name:"codec: decode READ1_ACK (intern miss)"
    (Staged.stage (fun () ->
         flip := not !flip;
         ignore
           (Net.Codec.decode_payload codec
              (if !flip then payload_a else payload_b))))

(* -- domain handoff queue ----------------------------------------------- *)

(* The acceptor->worker connection handoff: 64 pushes then one drain,
   the shape one select wakeup sees under an accept burst.  Single
   domain — the contended cross-domain cost is what E18 measures; this
   pins the uncontended CAS/drain cost and its allocation rate. *)
let bench_handoff =
  Test.make ~name:"handoff: 64 push + drain"
    (Staged.stage (fun () ->
         let q = Exec.Handoff.create () in
         for i = 1 to 64 do
           Exec.Handoff.push q i
         done;
         ignore (Exec.Handoff.drain q)))

let bench_handoff_single =
  Test.make ~name:"handoff: push + drain (1 element)"
    (Staged.stage (fun () ->
         let q = Exec.Handoff.create () in
         Exec.Handoff.push q 1;
         ignore (Exec.Handoff.drain q)))

(* -- read-coalescing batch ----------------------------------------------- *)

(* The hot-key coalescing lifecycle: one lead opens a batch, joiners
   attach while the round-1 broadcast is being assembled, the pump
   closes it at flush, and the lead's completion fans the result out.
   Per-join and per-batch cost must stay far below one quorum RPC for
   coalescing to be a pure win — this pins both, and the allocation
   rate (one cons per join). *)
let bench_coalesce_batch =
  Test.make ~name:"coalesce: 63 joins + close + fan-out"
    (Staged.stage (fun () ->
         let b = Net.Coalesce.create ~cap:64 in
         while Net.Coalesce.can_join b do
           Net.Coalesce.join b (Net.Coalesce.width b)
         done;
         Net.Coalesce.close b;
         let acc = ref 0 in
         Net.Coalesce.iter_joiners (fun op -> acc := !acc + op) b;
         !acc))

let bench_coalesce_join =
  Test.make ~name:"coalesce: join (1 element)"
    (Staged.stage (fun () ->
         let b = Net.Coalesce.create ~cap:2 in
         Net.Coalesce.join b 1;
         Net.Coalesce.close b;
         Net.Coalesce.width b))

let tests =
  [
    bench_prng;
    bench_heap;
    bench_handoff;
    bench_handoff_single;
    bench_coalesce_batch;
    bench_coalesce_join;
    bench_safe_object;
    bench_regular_object;
    bench_writer_round;
    bench_safe_read_fast_path;
    bench_end_to_end_scenario;
    bench_checker;
    bench_codec_encode;
    bench_codec_decode_hot;
    bench_codec_decode_cold;
  ]

let run () =
  Exp_common.section "Micro-benchmarks (bechamel, per run)";
  let grouped = Test.make_grouped ~name:"robust_read" tests in
  let benchmark_cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    Benchmark.all benchmark_cfg
      [ Instance.monotonic_clock; Instance.minor_allocated ]
      grouped
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some ols -> (
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some _ | None -> nan)
    | None -> nan
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let rows =
    Hashtbl.fold (fun name _ acc -> name :: acc) times []
    |> List.sort_uniq compare
  in
  let table =
    Stats.Table.create ~headers:[ "benchmark"; "time/run"; "minor words/run" ]
  in
  List.iter
    (fun name ->
      let ns = estimate times name in
      let time_cell =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      let words = estimate allocs name in
      let alloc_cell =
        if Float.is_nan words then "n/a" else Printf.sprintf "%.0f" words
      in
      Stats.Table.add_row table [ name; time_cell; alloc_cell ])
    rows;
  Exp_common.print_table table
