(* E16 -- survival and read latency under live chaos vs fault intensity.

   The paper's robustness claim is binary (within budget the register
   survives); E16 measures what that survival COSTS on real sockets.
   For each fault-intensity level (the maximum number of actions a
   random within-budget plan may contain, 0 = undisturbed baseline) it
   runs E16_PLANS live chaos campaigns — the exact plans the simulator
   sweeps, injected through the per-object interposers — and reports:

   1. survival rate: fraction of runs with no safety/regularity/
      wait-freedom violation (the paper predicts 1.0 at every level,
      since every generated plan is within budget);
   2. operation completion: completed/total across all runs (failed
      operations at intensity > 0 would show up here first);
   3. read p50/p99 wall-clock latency under chaos, from the merged
      per-run metric registries — the price of the faults;
   4. op.reconnects: how often clients had to re-dial crashed or
      partitioned objects.

   Latency here is NOT a throughput benchmark: ops run at the
   campaign workload's scheduled times through interposer proxies, so
   the numbers are per-operation costs under fault windows, comparable
   across intensity levels rather than against E14/E15 rates.

   One JSON artifact: BENCH_e16.json.  Environment-tunable:
     E16_INTENSITIES (0,2,4,8)        max plan actions per level
     E16_PLANS       (4)              live runs (seeds) per level
     E16_HORIZON     (800)            plan horizon in virtual ticks
     E16_TICK_US     (200)            wall-clock us per virtual tick
     E16_T, E16_B    (1, 1)           resilience budget (S = 2t+b+1)
     E16_OUT         (BENCH_e16.json) output path *)

let getenv_int ?(min = 1) name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= min -> n
      | _ ->
          Printf.eprintf "%s expects an integer >= %d (got %S)\n" name min s;
          exit 2)
  | None -> default

let intensities () =
  match Sys.getenv_opt "E16_INTENSITIES" with
  | None -> [ 0; 2; 4; 8 ]
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x ->
             match int_of_string_opt (String.trim x) with
             | Some n when n >= 0 -> n
             | _ ->
                 Printf.eprintf "E16_INTENSITIES: cannot parse %S\n" s;
                 exit 2)

let quantile_or_zero h p =
  match h with
  | Some h when Obs.Metrics.Histogram.count h > 0 ->
      Obs.Metrics.Histogram.quantile h p
  | _ -> 0.

let run () =
  let plans = getenv_int "E16_PLANS" 4 in
  let horizon = getenv_int "E16_HORIZON" 800 in
  let tick_us = getenv_int "E16_TICK_US" 200 in
  let t = getenv_int "E16_T" 1 in
  let b = getenv_int ~min:0 "E16_B" 1 in
  let out = Option.value (Sys.getenv_opt "E16_OUT") ~default:"BENCH_e16.json" in
  let levels = intensities () in
  let protocol = Fault.Campaign.Safe in
  let cfg = Fault.Campaign.default_cfg protocol ~t ~b in
  let opts = { Net.Live.default_opts with tick_us } in
  Exp_common.note
    "E16: live chaos cost (%d intensity levels x %d plans, horizon %d x \
     %dus ticks, t=%d b=%d)"
    (List.length levels) plans horizon tick_us t b;
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\n  \"experiment\": \"e16\",\n  \"protocol\": \"%s\",\n  \"s\": %d, \
     \"t\": %d, \"b\": %d,\n  \"plans_per_level\": %d,\n  \"horizon\": %d,\n\
    \  \"tick_us\": %d,\n  \"cells\": [\n"
    (Fault.Campaign.protocol_name protocol)
    cfg.Quorum.Config.s t b plans horizon tick_us;
  List.iteri
    (fun li intensity ->
      let budget = { Fault.Plan.horizon; max_actions = intensity } in
      let metrics = Obs.Metrics.create () in
      let survived = ref 0 in
      let completed = ref 0 in
      let total = ref 0 in
      let actions = ref 0 in
      for seed = 1 to plans do
        let plan =
          if intensity = 0 then { Fault.Plan.horizon; actions = [] }
          else Fault.Plan.gen ~rng:(Sim.Prng.create ~seed) ~cfg ~budget
        in
        actions := !actions + Fault.Plan.length plan;
        let v = Net.Live.run_plan ~metrics ~opts protocol ~cfg ~seed plan in
        if not (Fault.Campaign.verdict_violates protocol v) then incr survived;
        completed := !completed + v.Fault.Campaign.completed;
        total := !total + v.Fault.Campaign.total
      done;
      let reads = Obs.Metrics.find_histogram metrics "op.read.latency_us" in
      let writes = Obs.Metrics.find_histogram metrics "op.write.latency_us" in
      let reconnects = Obs.Metrics.counter_value metrics "op.reconnects" in
      let rate = float_of_int !survived /. float_of_int plans in
      Exp_common.note
        "  intensity<=%-2d survival=%d/%d  ops=%d/%d  read p50=%.0fus \
         p99=%.0fus  reconnects=%d"
        intensity !survived plans !completed !total
        (quantile_or_zero reads 50.) (quantile_or_zero reads 99.) reconnects;
      Printf.bprintf buf
        "    { \"max_actions\": %d, \"plans\": %d, \"plan_actions\": %d,\n\
        \      \"survived\": %d, \"survival_rate\": %.3f,\n\
        \      \"ops_completed\": %d, \"ops_total\": %d,\n\
        \      \"read_p50_us\": %.0f, \"read_p99_us\": %.0f,\n\
        \      \"write_p99_us\": %.0f, \"reconnects\": %d }%s\n"
        intensity plans !actions !survived rate !completed !total
        (quantile_or_zero reads 50.) (quantile_or_zero reads 99.)
        (quantile_or_zero writes 99.) reconnects
        (if li = List.length levels - 1 then "" else ","))
    levels;
  Printf.bprintf buf "  ]\n}\n";
  Obs.Export.write_file ~path:out (Buffer.contents buf);
  Exp_common.note "wrote %s" out
