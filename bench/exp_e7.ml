(* E7 -- latency distributions (the S6 "how fast" question, empirically):
   simulated read/write latency per protocol and delay model.  A round
   trip costs two one-way delays, so 2-round protocols should sit near
   2x the per-round cost of 1-round ones, with tails governed by the
   straggler order statistics of waiting for S-t replies. *)

let models =
  [
    ("uniform(1,10)", Sim.Delay.uniform ~lo:1 ~hi:10);
    ("exponential(5)", Sim.Delay.exponential ~mean:5.0);
    ( "bimodal(2|40)",
      Sim.Delay.bimodal ~fast:(Sim.Delay.constant 2)
        ~slow:(Sim.Delay.constant 40) ~slow_fraction:0.1 );
  ]

let contenders =
  [
    Exp_common.safe_contender;
    Exp_common.regular_opt_contender;
    Exp_common.abd_contender;
    Exp_common.auth_contender;
    Exp_common.nonmod_contender;
  ]

let contention_sweep () =
  Exp_common.note "";
  Exp_common.note
    "Contention sweep (regular protocol): does read/write overlap force";
  Exp_common.note "second rounds?";
  let table =
    Stats.Table.create
      ~headers:
        [ "write every"; "reads"; "fast reads"; "rd rnds mean"; "rd p50";
          "rd p99"; "regular?" ]
  in
  List.iter
    (fun every ->
      let summaries =
        List.map
          (fun seed ->
            let schedule =
              Workload.Generate.write_storm ~writes:20 ~readers:2 ~every
            in
            Exp_common.run ~seed
              ~delay:(Sim.Delay.uniform ~lo:1 ~hi:10)
              ~crashes:[] ~use_byz:false Exp_common.regular_contender schedule)
          [ 1; 2; 3 ]
      in
      let reads =
        List.fold_left
          (fun acc s -> Stats.Summary.merge acc s.Exp_common.read_latency)
          (Stats.Summary.create ()) summaries
      in
      let avg f =
        List.fold_left (fun acc s -> acc +. f s) 0.0 summaries
        /. float_of_int (List.length summaries)
      in
      Stats.Table.add_row table
        [
          Stats.Table.cell_int every;
          Stats.Table.cell_int (Stats.Summary.count reads);
          Printf.sprintf "%.0f%%"
            (100.0 *. avg (fun s -> s.Exp_common.fast_read_fraction));
          Stats.Table.cell_float (avg (fun s -> s.Exp_common.read_rounds_mean));
          Stats.Table.cell_float (Stats.Summary.median reads);
          Stats.Table.cell_float (Stats.Summary.percentile reads 99.0);
          Stats.Table.cell_bool
            (List.for_all (fun s -> s.Exp_common.regular) summaries);
        ])
    [ 200; 80; 40; 20; 10 ];
  Exp_common.print_table table;
  Exp_common.note
    "Measured shape (stronger than we first expected): contention alone";
  Exp_common.note
    "does NOT erode the fast path -- by the time a tuple is a candidate,";
  Exp_common.note
    "its pre-write already reached a quorum, so b+1 vouchers are almost";
  Exp_common.note
    "always in the first round-1 quorum.  The 2-round worst case needs";
  Exp_common.note
    "Byzantine interference (see E2's byz rows), exactly the adversary";
  Exp_common.note "the paper's bound is about.  Regularity holds throughout."

let run () =
  Exp_common.section "E7: latency distributions per delay model";
  let table =
    Stats.Table.create
      ~headers:
        [
          "protocol"; "delay model"; "reads"; "rd p50"; "rd p99"; "rd max";
          "wr p50"; "rd rnds mean";
        ]
  in
  List.iter
    (fun contender ->
      List.iter
        (fun (mname, delay) ->
          let summaries =
            List.map
              (fun seed ->
                let rng = Sim.Prng.create ~seed in
                let schedule =
                  Core.Schedule.merge
                    (Workload.Generate.sequential ~writes:3 ~readers:2 ~gap:100)
                    (Workload.Generate.poisson_reads ~rng ~readers:2
                       ~mean_gap:40.0 ~horizon:1200)
                in
                Exp_common.run ~seed ~delay ~crashes:[] ~use_byz:false contender
                  schedule)
              [ 1; 2; 3; 4; 5 ]
          in
          let reads =
            List.fold_left
              (fun acc s -> Stats.Summary.merge acc s.Exp_common.read_latency)
              (Stats.Summary.create ()) summaries
          in
          let writes =
            List.fold_left
              (fun acc s -> Stats.Summary.merge acc s.Exp_common.write_latency)
              (Stats.Summary.create ()) summaries
          in
          let rounds_mean =
            List.fold_left (fun acc s -> acc +. s.Exp_common.read_rounds_mean)
              0.0 summaries
            /. float_of_int (List.length summaries)
          in
          Stats.Table.add_row table
            [
              Exp_common.label contender;
              mname;
              Stats.Table.cell_int (Stats.Summary.count reads);
              Stats.Table.cell_float (Stats.Summary.median reads);
              Stats.Table.cell_float (Stats.Summary.percentile reads 99.0);
              Stats.Table.cell_float (Stats.Summary.max reads);
              Stats.Table.cell_float (Stats.Summary.median writes);
              Stats.Table.cell_float rounds_mean;
            ])
        models;
      Stats.Table.add_separator table)
    contenders;
  Exp_common.print_table table;
  contention_sweep ();
  Exp_common.note "";
  Exp_common.note
    "Expected shape: 1-round protocols (ABD, authenticated) cluster around";
  Exp_common.note
    "one straggler-bounded round trip; the 2-round safe/regular writes cost";
  Exp_common.note
    "about twice that; safe/regular READS mostly ride the round-1 fast path";
  Exp_common.note
    "when uncontended, so their read p50 tracks the 1-round protocols with a";
  Exp_common.note "p99 no worse than 2 round trips."
