(* robustread — command-line driver for the robust-storage simulator.

     robustread info -t 2 -b 1
     robustread run --protocol safe -t 1 -b 1 --writes 3 --reads 5 --attack forge
     robustread lower-bound --protocol naive-fast -t 1 -b 1
     robustread check --protocol safe --attack forge --budget 200000

   See README.md for a tour. *)

open Cmdliner

(* ----- shared argument parsing ----------------------------------------- *)

let t_arg =
  Arg.(value & opt int 1 & info [ "t" ] ~docv:"T" ~doc:"Failure bound t.")

let b_arg =
  Arg.(value & opt int 1 & info [ "b" ] ~docv:"B" ~doc:"Byzantine bound b (<= t).")

let s_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "s" ] ~docv:"S" ~doc:"Number of base objects (default 2t+b+1).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel execution (default: the number of \
           cores).  Results are byte-identical whatever $(docv) is; $(b,1) \
           forces the serial path.")

(* The §5.1 cached/suffix variant for the sim-side commands; the two
   readers match the default workloads (reads from r1 and r2). *)
module Proto_gc2 = Core.Proto_regular_gc.Make (struct
  let readers = 2
end)

let protocol_arg =
  let protocols =
    [
      ("safe", `Safe);
      ("regular", `Regular);
      ("regular-opt", `Regular_opt);
      ("regular-gc", `Regular_gc);
      ("abd", `Abd);
      ("abd-atomic", `Abd_atomic);
      ("nonmod", `Nonmod);
      ("auth", `Auth);
      ("naive-fast", `Naive_fast);
    ]
  in
  Arg.(
    value
    & opt (enum protocols) `Safe
    & info [ "protocol"; "p" ] ~docv:"PROTO"
        ~doc:
          "Protocol: $(b,safe), $(b,regular), $(b,regular-opt), \
           $(b,regular-gc), $(b,abd), $(b,abd-atomic), $(b,nonmod), \
           $(b,auth) or $(b,naive-fast).")

let attack_arg =
  let attacks =
    [
      ("none", `None);
      ("forge", `Forge);
      ("replay", `Replay);
      ("simulate", `Simulate);
      ("defame", `Defame);
      ("garbage", `Garbage);
    ]
  in
  Arg.(
    value
    & opt (enum attacks) `None
    & info [ "attack" ] ~docv:"ATTACK"
        ~doc:
          "Byzantine strategy for the first $(i,b) objects: $(b,none), \
           $(b,forge), $(b,replay), $(b,simulate), $(b,defame) or \
           $(b,garbage).")

let delay_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ "const"; d ] -> Ok (Sim.Delay.constant (int_of_string d))
    | [ "uniform"; lo; hi ] ->
        Ok (Sim.Delay.uniform ~lo:(int_of_string lo) ~hi:(int_of_string hi))
    | [ "exp"; m ] -> Ok (Sim.Delay.exponential ~mean:(float_of_string m))
    | _ -> Error (`Msg "expected const:D, uniform:LO:HI or exp:MEAN")
  in
  let print ppf _ = Format.pp_print_string ppf "<delay>" in
  Arg.(
    value
    & opt (conv (parse, print)) (Sim.Delay.uniform ~lo:1 ~hi:10)
    & info [ "delay" ] ~docv:"MODEL"
        ~doc:"Delay model: $(b,const:D), $(b,uniform:LO:HI) or $(b,exp:MEAN).")

(* Shared up-front validation: every command that simulates a supposedly
   robust system refuses to start below the resilience lower bound,
   instead of producing a run whose failures would be meaningless.  The
   deliberately under-provisioned regimes (lower-bound, the naive-fast
   negative control in chaos campaigns) opt out explicitly. *)
let ensure_resilience_bound ?(allow_under_provisioned = false) cfg =
  if
    (not allow_under_provisioned)
    && not (Quorum.Config.meets_resilience_bound cfg)
  then begin
    let t = cfg.Quorum.Config.t and b = cfg.Quorum.Config.b in
    Format.eprintf
      "robustread: S = %d is below the resilience lower bound 2t + b + 1 = %d \
       for t = %d, b = %d:@.no robust wait-free storage exists at this size \
       (paper Section 1).  Use -s %d or more,@.or 'robustread lower-bound' to \
       replay the impossibility itself.@."
      cfg.Quorum.Config.s
      (Quorum.Config.optimal_s ~t ~b)
      t b
      (Quorum.Config.optimal_s ~t ~b);
    exit 2
  end;
  cfg

let config ?allow_under_provisioned ~s ~t ~b () =
  let s = Option.value s ~default:(Quorum.Config.optimal_s ~t ~b) in
  match Quorum.Config.make ~s ~t ~b with
  | Ok cfg -> ensure_resilience_bound ?allow_under_provisioned cfg
  | Error e ->
      Format.eprintf "robustread: invalid configuration: %s@." e;
      exit 2

(* ----- info ------------------------------------------------------------- *)

let info_cmd =
  let run t b s =
    let cfg = config ~allow_under_provisioned:true ~s ~t ~b () in
    Format.printf "configuration      : %a@." Quorum.Config.pp cfg;
    Format.printf "optimal resilience : S >= %d (2t+b+1)%s@."
      (Quorum.Config.optimal_s ~t ~b)
      (if Quorum.Config.is_optimally_resilient cfg then "  [exactly optimal]"
       else "");
    Format.printf "round quorum       : S - t = %d@." (Quorum.Config.quorum cfg);
    Format.printf "safe vouchers      : b + 1 = %d@." (b + 1);
    Format.printf "dissent threshold  : t + b + 1 = %d@." (t + b + 1);
    Format.printf "fast reads possible: %b (requires S >= 2t+2b+1 = %d)@."
      (Quorum.Config.fast_read_admissible cfg)
      ((2 * t) + (2 * b) + 1);
    Format.printf "quorum intersection: %b; write persistence: %b@."
      (Quorum.Intersect.check_byzantine_intersection cfg)
      (Quorum.Intersect.check_write_persistence cfg)
  in
  let term = Term.(const run $ t_arg $ b_arg $ s_arg) in
  Cmd.v (Cmd.info "info" ~doc:"Print the resilience arithmetic for (t, b, S).")
    term

(* ----- run --------------------------------------------------------------- *)

let core_attack = function
  | `None -> []
  | `Forge -> [ Fault.Strategies.forge_high_value ~value:"evil" ~ts_boost:9 ]
  | `Replay -> [ Fault.Strategies.replay_initial ]
  | `Simulate -> [ Fault.Strategies.simulate_unwritten_write ~value:"ghost" ~ts:9 ]
  | `Defame -> [ Fault.Strategies.defame ~targets:[ 1; 3 ] ~boost:10 ]
  | `Garbage -> [ Fault.Strategies.random_garbage ]

let regular_attack = function
  | `None -> []
  | `Forge -> [ Fault.Strategies.forge_history ~value:"evil" ~ts_boost:9 ]
  | `Replay -> [ Fault.Strategies.stale_history ~keep:1 ]
  | `Simulate -> [ Fault.Strategies.forge_history ~value:"ghost" ~ts_boost:9 ]
  | `Defame -> [ Fault.Strategies.defame_history ~targets:[ 1; 3 ] ~boost:10 ]
  | `Garbage -> [ Fault.Strategies.empty_history ]

(* Standard CLI workload: [writes] sequential writes observed by
   [readers] readers, plus [reads] extra random reads per reader. *)
let cli_schedule ~seed ~writes ~readers ~reads =
  let rng = Sim.Prng.create ~seed in
  Core.Schedule.merge
    (Workload.Generate.sequential ~writes ~readers ~gap:60)
    (Workload.Generate.read_mostly ~rng ~writes:0 ~readers
       ~reads_per_reader:reads ~horizon:(60 * (writes + 2) * (readers + 1)))

let write_artifacts ~dir files =
  (try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
      Format.eprintf "robustread: cannot create %s: %s@." dir
        (Unix.error_message e);
      exit 2);
  List.iter
    (fun (name, contents) ->
      let path = Filename.concat dir name in
      Obs.Export.write_file ~path contents;
      Format.eprintf "wrote %s@." path)
    files

let run_generic (type m)
    (module P : Core.Protocol_intf.S with type msg = m)
    ~(byz : m Core.Byz.factory list) ~cfg ~seed ~delay ~writes ~readers ~reads
    ~trace ~metrics ~artifacts =
  let module Sc = Core.Scenario.Make (P) in
  let b = cfg.Quorum.Config.b in
  (* the first b objects run the chosen strategy *)
  let byz_plan =
    match byz with [] -> [] | f :: _ -> List.init b (fun i -> (i + 1, f))
  in
  let schedule = cli_schedule ~seed ~writes ~readers ~reads in
  let registry = if metrics then Some (Obs.Metrics.create ()) else None in
  let rep =
    Sc.run ~trace ?metrics:registry
      ?clock:(if metrics then Some Unix.gettimeofday else None)
      ~cfg ~seed ~delay
      ~faults:{ Sc.crashes = []; byzantine = byz_plan }
      schedule
  in
  Format.printf "protocol %s on %a, seed %d@." P.name Quorum.Config.pp cfg seed;
  List.iter
    (fun (o : Sc.outcome) ->
      match o.op with
      | Core.Schedule.Write v ->
          Format.printf "  [%6d] write(%s) rounds=%d latency=%d@." o.invoked_at
            (Core.Value.to_string v) o.rounds (o.completed_at - o.invoked_at)
      | Core.Schedule.Read { reader } ->
          Format.printf "  [%6d] read(r%d) = %s rounds=%d latency=%d@."
            o.invoked_at reader
            (match o.result with
            | Some v -> Core.Value.to_string v
            | None -> "?")
            o.rounds (o.completed_at - o.invoked_at))
    rep.outcomes;
  let equal = String.equal in
  let safety = Histories.Checks.check_safety ~equal rep.history in
  let regularity = Histories.Checks.check_regularity ~equal rep.history in
  Format.printf "completed %d/%d operations; %d messages delivered@."
    (List.length rep.outcomes) (List.length schedule) rep.messages_delivered;
  Format.printf "safety: %s; regularity: %s@."
    (if safety = [] then "OK" else Printf.sprintf "%d VIOLATIONS" (List.length safety))
    (if regularity = [] then "OK"
     else Printf.sprintf "%d VIOLATIONS" (List.length regularity));
  List.iter
    (fun v ->
      Format.printf "  violation: %a@."
        (Histories.Checks.pp_violation ~pp_value:Format.pp_print_string)
        v)
    (safety @ regularity);
  (match rep.trace with
  | Some tr -> Format.printf "--- trace ---@.%a" Sim.Trace.pp tr
  | None -> ());
  (match registry with
  | Some reg ->
      Format.printf "--- metrics ---@.%s"
        (Stats.Table.to_string (Obs.Metrics.table reg))
  | None -> ());
  (match artifacts with
  | Some dir ->
      let files =
        [ ("spans.jsonl", Obs.Export.spans_jsonl rep.spans) ]
        @ (match registry with
          | Some reg -> [ ("metrics.jsonl", Obs.Export.metrics_jsonl reg) ]
          | None -> [])
        @
        match rep.trace with
        | Some tr -> [ ("trace.jsonl", Sim.Trace.to_jsonl tr) ]
        | None -> []
      in
      write_artifacts ~dir files
  | None -> ());
  if safety <> [] || regularity <> [] then exit 1

(* Protocol dispatch shared by [run] and [trace]: instantiate the chosen
   protocol module together with the attack's concrete strategies. *)
type dispatcher = {
  go :
    'm.
    (module Core.Protocol_intf.S with type msg = 'm) ->
    'm Core.Byz.factory list ->
    unit;
}

let dispatch protocol attack { go } =
  match protocol with
  | `Safe -> go (module Core.Proto_safe) (core_attack attack)
  | `Regular -> go (module Core.Proto_regular.Plain) (regular_attack attack)
  | `Regular_opt ->
      go (module Core.Proto_regular.Optimized) (regular_attack attack)
  | `Regular_gc -> go (module Proto_gc2) (regular_attack attack)
  | `Abd ->
      go
        (module Baseline.Abd.Regular)
        (match attack with
        | `None -> []
        | _ -> [ Baseline.Abd.byz_forge_high ~value:"evil" ~ts_boost:9 ])
  | `Abd_atomic ->
      go
        (module Baseline.Abd.Atomic)
        (match attack with
        | `None -> []
        | _ -> [ Baseline.Abd.byz_forge_high ~value:"evil" ~ts_boost:9 ])
  | `Nonmod ->
      go
        (module Baseline.Nonmod)
        (match attack with
        | `None -> []
        | `Replay -> [ Baseline.Nonmod.byz_stale ]
        | _ -> [ Baseline.Nonmod.byz_forge_high ~value:"evil" ~ts_boost:9 ])
  | `Auth ->
      go
        (module Baseline.Auth)
        (match attack with
        | `None -> []
        | `Replay -> [ Baseline.Auth.byz_replay_stale ]
        | _ -> [ Baseline.Auth.byz_forge ~value:"evil" ~ts_boost:9 ])
  | `Naive_fast ->
      go
        (module Baseline.Naive_fast)
        (match attack with
        | `None -> []
        | `Replay -> [ Baseline.Naive_fast.byz_replay_initial ]
        | `Simulate ->
            [ Baseline.Naive_fast.byz_simulate_write ~value:"ghost" ~ts:9 ]
        | _ -> [ Baseline.Naive_fast.byz_forge_high ~value:"ghost" ~ts_boost:9 ])

let writes_arg =
  Arg.(value & opt int 3 & info [ "writes" ] ~docv:"N" ~doc:"Number of writes.")

let readers_arg =
  Arg.(value & opt int 2 & info [ "readers" ] ~docv:"R" ~doc:"Number of readers.")

let reads_arg =
  Arg.(
    value & opt int 4
    & info [ "reads" ] ~docv:"N" ~doc:"Extra random reads per reader.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect observability metrics (round-count/latency histograms, \
           wire counters, queue depth) and print the table.")

let artifacts_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "artifacts" ] ~docv:"DIR"
        ~doc:"Write span/metrics/trace JSONL artifacts into $(docv).")

let run_cmd =
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Dump the full message trace.")
  in
  let run protocol t b s seed delay attack writes readers reads trace metrics
      artifacts =
    let cfg = config ~s ~t ~b () in
    (* artifacts always need the raw trace to link spans to entries *)
    let trace = trace || artifacts <> None in
    dispatch protocol attack
      {
        go =
          (fun (type m) (module P : Core.Protocol_intf.S with type msg = m)
               (byz : m Core.Byz.factory list) ->
            run_generic (module P) ~byz ~cfg ~seed ~delay ~writes ~readers
              ~reads ~trace ~metrics ~artifacts);
      }
  in
  let term =
    Term.(
      const run $ protocol_arg $ t_arg $ b_arg $ s_arg $ seed_arg $ delay_arg
      $ attack_arg $ writes_arg $ readers_arg $ reads_arg $ trace_arg
      $ metrics_arg $ artifacts_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a simulated workload on a protocol, print per-operation \
          results and check the history.")
    term

(* ----- trace ------------------------------------------------------------- *)

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the span JSONL to $(docv) instead of stdout.")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Also emit the raw message-trace entries (the low-level events \
             each span's trace_first/trace_len indexes into).")
  in
  let run protocol t b s seed delay attack writes readers reads out raw =
    let cfg = config ~s ~t ~b () in
    dispatch protocol attack
      {
        go =
          (fun (type m) (module P : Core.Protocol_intf.S with type msg = m)
               (byz : m Core.Byz.factory list) ->
            let module Sc = Core.Scenario.Make (P) in
            let nbyz = cfg.Quorum.Config.b in
            let byz_plan =
              match byz with
              | [] -> []
              | f :: _ -> List.init nbyz (fun i -> (i + 1, f))
            in
            let schedule = cli_schedule ~seed ~writes ~readers ~reads in
            let rep =
              Sc.run ~trace:true ~cfg ~seed ~delay
                ~faults:{ Sc.crashes = []; byzantine = byz_plan }
                schedule
            in
            let payload =
              Obs.Export.spans_jsonl rep.spans
              ^
              match (raw, rep.trace) with
              | true, Some tr -> Sim.Trace.to_jsonl tr
              | _ -> ""
            in
            (match out with
            | "-" -> print_string payload
            | path ->
                Obs.Export.write_file ~path payload;
                Format.eprintf "wrote %s@." path);
            let completed =
              List.length (List.filter Obs.Span.completed rep.spans)
            in
            match rep.trace with
            | Some tr ->
                let st = Sim.Trace.stats tr in
                Format.eprintf
                  "%d spans (%d completed); %d sends, %d delivers, %d drops@."
                  (List.length rep.spans) completed st.Sim.Trace.sends
                  st.delivers st.drops
            | None -> ());
      }
  in
  let term =
    Term.(
      const run $ protocol_arg $ t_arg $ b_arg $ s_arg $ seed_arg $ delay_arg
      $ attack_arg $ writes_arg $ readers_arg $ reads_arg $ out_arg $ raw_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a simulated workload and export one deterministic JSONL span \
          per operation (proc, start/end, round transitions, contacted \
          objects, links into the raw trace).  Byte-identical across runs \
          with the same parameters; the golden-trace tests pin it.")
    term

(* ----- lower-bound -------------------------------------------------------- *)

let lower_bound_cmd =
  let run protocol t b =
    let analyse (module P : Core.Protocol_intf.S) =
      let module LB = Mc.Lower_bound.Make (P) in
      let o = LB.analyse ~t ~b ~value:(Core.Value.v "v1") in
      List.iter print_endline o.transcript;
      print_newline ();
      List.iter print_endline (LB.figure o);
      match o.verdict with LB.Not_fast -> () | _ -> exit 1
    in
    match protocol with
    | `Safe -> analyse (module Core.Proto_safe)
    | `Regular -> analyse (module Core.Proto_regular.Plain)
    | `Regular_opt -> analyse (module Core.Proto_regular.Optimized)
    | `Regular_gc -> analyse (module Proto_gc2)
    | `Abd -> analyse (module Baseline.Abd.Regular)
    | `Abd_atomic -> analyse (module Baseline.Abd.Atomic)
    | `Nonmod -> analyse (module Baseline.Nonmod)
    | `Auth ->
        print_endline
          "the authenticated baseline is exempt: run5's forged state would \
           contain a signature over a never-written value"
    | `Naive_fast -> analyse (module Baseline.Naive_fast)
  in
  let term = Term.(const run $ protocol_arg $ t_arg $ b_arg) in
  Cmd.v
    (Cmd.info "lower-bound"
       ~doc:
         "Replay the Proposition 1 construction (Figure 1) against a \
          protocol on S = 2t+2b objects.  Exits 1 if the protocol is fast \
          (and therefore violates safety).")
    term

(* ----- check --------------------------------------------------------------- *)

let check_cmd =
  let budget_arg =
    Arg.(
      value & opt int 200_000
      & info [ "budget" ] ~docv:"STATES" ~doc:"Model-checker state budget.")
  in
  let run protocol t b budget =
    let cfg = config ~s:None ~t ~b () in
    let check (module P : Core.Protocol_intf.S) =
      let module E = Mc.Explorer.Make (P) in
      let r =
        E.check ~max_states:budget
          {
            E.cfg = cfg;
            writes = [ Core.Value.v "a" ];
            reads = [ (1, 1) ];
            sequential = true;
            byz = [];
            crashed = [];
          }
      in
      Format.printf "explored %d states, %d terminal histories, truncated: %b@."
        r.explored r.terminals r.truncated;
      List.iter
        (fun (v : E.violation) -> Format.printf "violation [%s]: %s@." v.kind v.detail)
        r.violations;
      if r.violations <> [] then exit 1
    in
    match protocol with
    | `Safe -> check (module Core.Proto_safe)
    | `Regular -> check (module Core.Proto_regular.Plain)
    | `Regular_opt -> check (module Core.Proto_regular.Optimized)
    | `Regular_gc -> check (module Proto_gc2)
    | `Abd -> check (module Baseline.Abd.Regular)
    | `Abd_atomic -> check (module Baseline.Abd.Atomic)
    | `Nonmod -> check (module Baseline.Nonmod)
    | `Auth -> check (module Baseline.Auth)
    | `Naive_fast -> check (module Baseline.Naive_fast)
  in
  let term = Term.(const run $ protocol_arg $ t_arg $ b_arg $ budget_arg) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check one write followed by one read for the \
          protocol, over all message delivery orders.")
    term

(* ----- walks ------------------------------------------------------------- *)

let walks_cmd =
  let walks_arg =
    Arg.(
      value & opt int 2000
      & info [ "walks" ] ~docv:"N" ~doc:"Number of random schedules to sample.")
  in
  let run protocol t b seed walks jobs =
    let cfg = config ~s:None ~t ~b () in
    let sample (module P : Core.Protocol_intf.S) =
      let module E = Mc.Explorer.Make (P) in
      let r =
        E.random_walks ?jobs ~walks ~seed
          {
            E.cfg = cfg;
            writes = [ Core.Value.v "a"; Core.Value.v "b" ];
            reads = [ (1, 2); (2, 2) ];
            sequential = false;
            byz = [];
            crashed = [];
          }
      in
      Format.printf
        "sampled %d schedules (%d delivery steps); violations: %d@."
        r.terminals r.explored (List.length r.violations);
      List.iter
        (fun (v : E.violation) -> Format.printf "violation [%s]: %s@." v.kind v.detail)
        r.violations;
      if r.violations <> [] then exit 1
    in
    match protocol with
    | `Safe -> sample (module Core.Proto_safe)
    | `Regular -> sample (module Core.Proto_regular.Plain)
    | `Regular_opt -> sample (module Core.Proto_regular.Optimized)
    | `Regular_gc -> sample (module Proto_gc2)
    | `Abd -> sample (module Baseline.Abd.Regular)
    | `Abd_atomic -> sample (module Baseline.Abd.Atomic)
    | `Nonmod -> sample (module Baseline.Nonmod)
    | `Auth -> sample (module Baseline.Auth)
    | `Naive_fast -> sample (module Baseline.Naive_fast)
  in
  let term =
    Term.(
      const run $ protocol_arg $ t_arg $ b_arg $ seed_arg $ walks_arg
      $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "walks"
       ~doc:
         "Monte-Carlo check: sample random delivery schedules of a 2-write,           4-read workload and verify every terminal history.")
    term

(* ----- chaos ------------------------------------------------------------- *)

let chaos_cmd =
  let protocols_arg =
    let proto_conv =
      Arg.conv
        ( (fun s ->
            match Fault.Campaign.protocol_of_string s with
            | Some p -> Ok p
            | None -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))),
          fun ppf p ->
            Format.pp_print_string ppf (Fault.Campaign.protocol_name p) )
    in
    Arg.(
      value
      & opt (some proto_conv) None
      & info [ "protocol"; "p" ] ~docv:"PROTO"
          ~doc:
            "Campaign a single protocol: $(b,safe), $(b,regular), \
             $(b,regular-opt), $(b,abd), $(b,fast-safe) or $(b,naive-fast).  \
             Default: all of them.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 20
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep (1..N).")
  in
  let plans_arg =
    Arg.(
      value & opt int 3
      & info [ "plans" ] ~docv:"K" ~doc:"Random fault plans per seed.")
  in
  let budget_arg =
    let budget_conv =
      Arg.conv
        ( (fun s ->
            match Fault.Plan.budget_of_string s with
            | Some bg -> Ok bg
            | None -> Error (`Msg "expected small, medium or large")),
          fun ppf (bg : Fault.Plan.budget) ->
            Format.fprintf ppf "horizon=%d,actions<=%d" bg.horizon bg.max_actions
        )
    in
    Arg.(
      value
      & opt budget_conv Fault.Plan.medium
      & info [ "budget" ] ~docv:"SIZE"
          ~doc:
            "Plan size: $(b,small) (horizon 800, <= 4 actions), $(b,medium) \
             (1500, <= 8) or $(b,large) (3000, <= 14).")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Do not minimize failure witnesses.")
  in
  let backend_arg =
    Arg.(
      value
      & opt (enum [ ("sim", `Sim); ("live", `Live) ]) `Sim
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "Execution backend: $(b,sim) runs plans in the deterministic \
             simulator; $(b,live) injects the same plans into a real socket \
             cluster through per-object fault interposers (crashes become \
             real process restarts, partitions become dropped frames).")
  in
  let tick_arg =
    Arg.(
      value
      & opt int Net.Live.default_opts.tick_us
      & info [ "tick-us" ] ~docv:"US"
          ~doc:
            "Live backend pacing: wall-clock microseconds per virtual plan \
             tick.")
  in
  let run protocol t b seeds plans budget no_shrink backend tick_us metrics
      artifacts jobs =
    (* Same validator as run/check; the campaign's own configurations are
       per-protocol, with naive-fast deliberately under-provisioned. *)
    let _ = config ~s:None ~t ~b () in
    let live = backend = `Live in
    let protocols =
      match protocol with
      | Some p ->
          if live && not (List.mem p Net.Live.supported) then begin
            Format.eprintf
              "robustread: protocol %s has no wire codec and cannot run \
               live@."
              (Fault.Campaign.protocol_name p);
            exit 2
          end;
          [ p ]
      | None ->
          (* The symbolic-only baselines have no wire codec; a live
             campaign quietly sweeps the protocols that do. *)
          if live then Net.Live.supported else Fault.Campaign.all_protocols
    in
    List.iter
      (fun p ->
        ignore
          (ensure_resilience_bound
             ~allow_under_provisioned:(p = Fault.Campaign.Naive_fast)
             (Fault.Campaign.default_cfg p ~t ~b)))
      protocols;
    let seeds = List.init seeds (fun i -> i + 1) in
    let campaign_backend =
      if live then Net.Live.backend ~opts:{ Net.Live.default_opts with tick_us } ()
      else Fault.Campaign.sim_backend
    in
    (* A live run monopolises sockets, threads and the wall clock; domain
       parallelism would just make runs contend.  Force one job. *)
    let jobs = if live then Some 1 else jobs in
    Format.printf
      "chaos campaign [%s]: %d protocols x %d seeds x %d plans (t=%d, b=%d, \
       jobs=%d)@."
      campaign_backend.Fault.Campaign.backend_name (List.length protocols)
      (List.length seeds) plans t b
      (Option.value jobs ~default:(Exec.Pool.recommended_jobs ()));
    let cells =
      Fault.Campaign.sweep ?jobs ~backend:campaign_backend ~budget
        ~plans_per_seed:plans ~protocols ~t ~b ~seeds ()
    in
    print_string (Stats.Table.to_string (Fault.Campaign.matrix_table cells));
    if metrics then begin
      Format.printf "@.per-cell observability (round distributions are r:count):@.";
      print_string (Stats.Table.to_string (Fault.Campaign.metrics_table cells))
    end;
    (match artifacts with
    | Some dir ->
        write_artifacts ~dir
          (( "survival.jsonl",
             Fault.Campaign.matrix_jsonl
               ~backend:campaign_backend.Fault.Campaign.backend_name cells )
          :: List.map
               (fun (c : Fault.Campaign.cell) ->
                 let name = Fault.Campaign.protocol_name c.protocol in
                 ( name ^ ".metrics.jsonl",
                   Obs.Export.metrics_jsonl
                     ~labels:
                       [
                         ("protocol", name);
                         ("cfg", Quorum.Config.to_string c.cfg);
                       ]
                     c.metrics ))
               cells)
    | None -> ());
    let unexpected = ref false in
    (* Cells that aborted (engine exception rather than a clean verdict)
       are reported structurally — protocol, seed, offending plan, error —
       instead of having killed the whole sweep. *)
    List.iter
      (fun (c : Fault.Campaign.cell) ->
        List.iter
          (fun (e : Fault.Campaign.cell_error) ->
            unexpected := true;
            Format.printf "@.%s cell ERROR (seed %d):@.  plan : %s@.  error: %s@."
              (Fault.Campaign.protocol_name c.protocol)
              e.seed
              (Fault.Plan.to_compact e.plan)
              e.error)
          c.errors)
      cells;
    List.iter
      (fun (c : Fault.Campaign.cell) ->
        match c.failures with
        | [] -> ()
        | (seed, plan) :: _ ->
            let p = c.protocol in
            let expected = p = Fault.Campaign.Naive_fast in
            if not expected then unexpected := true;
            Format.printf "@.%s broke%s — first witness (seed %d):@.  %s@."
              (Fault.Campaign.protocol_name p)
              (if expected then " (as Proposition 1 predicts)" else "")
              seed
              (Fault.Plan.to_compact plan);
            if not no_shrink then begin
              (* Shrinking always runs against the SIMULATOR repro: for a
                 live-found witness this is the cross-backend bridge —
                 the (protocol, cfg, seed, plan) coordinates replay
                 deterministically in sim, so the minimal witness is
                 stable even though the live run is not. *)
              let repro = Fault.Campaign.violates p ~cfg:c.cfg ~seed in
              let reproduces = (not live) || repro plan in
              if live then
                Format.printf "live-to-sim replay: %s@."
                  (if reproduces then
                     "reproduces — shrinking against the simulator"
                   else
                     "does NOT reproduce (timing-dependent); keeping the \
                      live witness unshrunk");
              if reproduces then begin
                let o = Fault.Shrink.minimize ~repro plan in
                Format.printf
                  "shrunk %d -> %d actions in %d runs (%d still violating):@.  \
                   %s@."
                  (Fault.Plan.length plan)
                  (Fault.Plan.length o.plan)
                  o.attempts o.reproductions
                  (Fault.Plan.to_compact o.plan);
                Format.printf
                  "replay: deterministic for (protocol=%s, %s, seed=%d) — verified %s@."
                  (Fault.Campaign.protocol_name p)
                  (Quorum.Config.to_string c.cfg)
                  seed
                  (if repro o.plan then "OK" else "FAILED")
              end
            end)
      cells;
    if !unexpected then exit 1
  in
  let term =
    Term.(
      const run $ protocols_arg $ t_arg $ b_arg $ seeds_arg $ plans_arg
      $ budget_arg $ no_shrink_arg $ backend_arg $ tick_arg $ metrics_arg
      $ artifacts_arg $ jobs_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep random within-budget fault plans (crashes, recoveries, \
          partitions, duplication, Byzantine switches) over the protocols, \
          print the survival matrix, and shrink any failure to a minimal \
          deterministic witness.  With $(b,--backend=live) the same plans \
          drive a real socket cluster through fault interposers, and any \
          counterexample is replayed and shrunk in the simulator.  Exits 1 \
          if a robust protocol breaks; naive-fast breaking is the expected \
          Proposition 1 control.")
    term

(* ----- live network commands (serve / client / cluster) ------------------- *)

(* The network runtime only packs the protocols whose wire messages have
   codecs; the CLI resolves them by the protocol's own name. *)
let net_protocol_arg =
  let proto_conv =
    Arg.conv
      ( (fun s ->
          match Net.Protocols.of_string s with
          | Some p -> Ok p
          | None ->
              Error
                (`Msg
                   (Printf.sprintf "unknown network protocol %S (have: %s)" s
                      (String.concat ", "
                         (List.map Net.Protocols.name Net.Protocols.all))))),
        fun ppf p -> Format.pp_print_string ppf (Net.Protocols.name p) )
  in
  Arg.(
    value
    & opt proto_conv Net.Protocols.safe
    & info [ "protocol"; "p" ] ~docv:"PROTO"
        ~doc:
          "Protocol to serve: $(b,safe), $(b,regular), $(b,regular-opt), \
           $(b,regular-gc), $(b,abd) or $(b,abd-atomic).")

let endpoint_conv =
  Arg.conv
    ( (fun s ->
        match Net.Endpoint.of_string s with
        | Ok ep -> Ok ep
        | Error e -> Error (`Msg e)),
      Net.Endpoint.pp )

let client_opts_args =
  let deadline_arg =
    Arg.(
      value
      & opt float Net.Client.default_opts.deadline
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:"Per-round deadline before a retransmit (seconds).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Net.Client.default_opts.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retransmit attempts before an operation fails.")
  in
  let backoff_arg =
    Arg.(
      value
      & opt float Net.Client.default_opts.backoff
      & info [ "backoff" ] ~docv:"SEC"
          ~doc:"Base retry backoff, doubled per attempt (seconds).")
  in
  Term.(
    const (fun deadline retries backoff ->
        { Net.Client.deadline; retries; backoff })
    $ deadline_arg $ retries_arg $ backoff_arg)

let loop_arg =
  Arg.(
    value
    & opt (enum [ ("threads", `Threads); ("poll", `Poll) ]) `Threads
    & info [ "loop" ] ~docv:"MODE"
        ~doc:
          "Connection handling: $(b,threads) (default; a thread per \
           connection) or $(b,poll) (a single event-loop domain — with \
           'cluster', all S base objects share it).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Worker domains for the poll event-loop group: base object $(i,i) \
           and every connection accepted for it are owned by domain \
           ($(i,i)-1) mod $(docv), so all automaton steps stay domain-local \
           (clamped to 1..S; only meaningful with $(b,--loop poll)).")

let live_artifacts ~metrics ~artifacts ~spans registry =
  match artifacts with
  | None -> ()
  | Some dir ->
      let files =
        [ ("spans.jsonl", Obs.Export.spans_jsonl spans) ]
        @
        if metrics then
          match registry with
          | Some reg -> [ ("metrics.jsonl", Obs.Export.metrics_jsonl reg) ]
          | None -> []
        else []
      in
      write_artifacts ~dir files

let print_outcome kind (o : Net.Client.outcome) =
  Format.printf "  %s%s rounds=%d retransmits=%d latency=%dus@." kind
    (match o.value with
    | Some v -> " = " ^ Core.Value.to_string v
    | None -> "")
    o.rounds o.retransmits o.latency_us

let serve_cmd =
  let index_arg =
    Arg.(
      value & opt int 1
      & info [ "index"; "i" ] ~docv:"I"
          ~doc:"1-based base-object index this server hosts.")
  in
  let endpoint_arg =
    Arg.(
      value
      & opt endpoint_conv (Net.Endpoint.Tcp { host = "127.0.0.1"; port = 0 })
      & info [ "endpoint"; "e" ] ~docv:"EP"
          ~doc:
            "Address to bind: $(b,unix:/path.sock), $(b,tcp:host:port) or \
             $(b,host:port).  TCP port 0 picks an ephemeral port and prints \
             it.")
  in
  let run protocol t b s index endpoint loop metrics artifacts =
    let cfg = config ~s ~t ~b () in
    if index < 1 || index > cfg.Quorum.Config.s then begin
      Format.eprintf "robustread: --index %d out of range 1..%d@." index
        cfg.Quorum.Config.s;
      exit 2
    end;
    let registry = if metrics then Some (Obs.Metrics.create ()) else None in
    let server =
      Net.Server.start ?metrics:registry ~loop ~protocol ~cfg ~index endpoint
    in
    Format.printf "serving object %d of %a (%s) on %a@." index Quorum.Config.pp
      cfg
      (Net.Protocols.name protocol)
      Net.Endpoint.pp
      (Net.Server.endpoint server);
    Format.print_flush ();
    (* Block until SIGINT/SIGTERM, then drain gracefully. *)
    let stop = Atomic.make false in
    let on_signal _ = Atomic.set stop true in
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
     with Invalid_argument _ -> ());
    while not (Atomic.get stop) do
      Thread.delay 0.2
    done;
    Net.Server.stop server;
    let st = Net.Server.stats server in
    Format.printf "served %d connections, %d messages@." st.connections
      st.messages;
    (match registry with
    | Some reg ->
        Format.printf "--- metrics ---@.%s"
          (Stats.Table.to_string (Obs.Metrics.table reg))
    | None -> ());
    live_artifacts ~metrics ~artifacts ~spans:[] registry
  in
  let term =
    Term.(
      const run $ net_protocol_arg $ t_arg $ b_arg $ s_arg $ index_arg
      $ endpoint_arg $ loop_arg $ metrics_arg $ artifacts_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Host one base object over a socket until SIGINT/SIGTERM.  Start S \
          of these (distinct --index, one endpoint each) to form a cluster \
          for 'robustread client'.")
    term

let client_cmd =
  let endpoints_arg =
    Arg.(
      value
      & opt_all endpoint_conv []
      & info [ "endpoint"; "e" ] ~docv:"EP"
          ~doc:
            "Base-object endpoints, in object order; repeat S times \
             ($(b,unix:/path.sock), $(b,tcp:host:port) or $(b,host:port)).")
  in
  let role_arg =
    let role_conv =
      Arg.conv
        ( (fun s ->
            match s with
            | "writer" | "w" -> Ok `Writer
            | _ -> (
                match
                  if String.length s > 1 && s.[0] = 'r' then
                    int_of_string_opt (String.sub s 1 (String.length s - 1))
                  else None
                with
                | Some j when j >= 1 -> Ok (`Reader j)
                | _ -> Error (`Msg (Printf.sprintf "bad role %S (writer, r1, r2, ...)" s)))),
          fun ppf -> function
            | `Writer -> Format.pp_print_string ppf "writer"
            | `Reader j -> Format.fprintf ppf "r%d" j )
    in
    Arg.(
      value & opt role_conv `Writer
      & info [ "role" ] ~docv:"ROLE"
          ~doc:"Which client to run: $(b,writer) or reader $(b,rN).")
  in
  let ops_arg =
    Arg.(
      value & opt int 1
      & info [ "ops"; "n" ] ~docv:"N"
          ~doc:"Operations to run (writes for the writer, reads for a reader).")
  in
  let value_arg =
    Arg.(
      value & opt string "v"
      & info [ "value" ] ~docv:"PREFIX"
          ~doc:"Written values are $(docv)1, $(docv)2, ...")
  in
  let run protocol t b s endpoints role ops value copts metrics artifacts =
    let cfg = config ~s ~t ~b () in
    if List.length endpoints <> cfg.Quorum.Config.s then begin
      Format.eprintf
        "robustread: %d endpoints given but the configuration has S = %d \
         objects (repeat --endpoint once per object)@."
        (List.length endpoints) cfg.Quorum.Config.s;
      exit 2
    end;
    let registry = if metrics then Some (Obs.Metrics.create ()) else None in
    let client =
      Net.Client.connect ?metrics:registry ~opts:copts ~protocol ~cfg ~role
        (Array.of_list endpoints)
    in
    Format.printf "%s client on %a (%s), %d op(s)@."
      (match role with `Writer -> "writer" | `Reader j -> Printf.sprintf "reader r%d" j)
      Quorum.Config.pp cfg
      (Net.Protocols.name protocol)
      ops;
    let failures = ref 0 in
    for i = 1 to ops do
      match role with
      | `Writer -> (
          let v = Core.Value.v (Printf.sprintf "%s%d" value i) in
          match Net.Client.write client v with
          | Ok o -> print_outcome ("write(" ^ Core.Value.to_string v ^ ")") o
          | Error e ->
              incr failures;
              Format.printf "  write FAILED: %s@." e)
      | `Reader _ -> (
          match Net.Client.read client with
          | Ok o -> print_outcome "read" o
          | Error e ->
              incr failures;
              Format.printf "  read FAILED: %s@." e)
    done;
    let spans = Net.Client.spans client in
    Net.Client.close client;
    (match registry with
    | Some reg ->
        Format.printf "--- metrics ---@.%s"
          (Stats.Table.to_string (Obs.Metrics.table reg))
    | None -> ());
    live_artifacts ~metrics ~artifacts ~spans registry;
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const run $ net_protocol_arg $ t_arg $ b_arg $ s_arg $ endpoints_arg
      $ role_arg $ ops_arg $ value_arg $ client_opts_args $ metrics_arg
      $ artifacts_arg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Run READ or WRITE operations against live 'robustread serve' \
          endpoints and report rounds, retransmissions and latency; spans \
          and metrics export exactly like the simulator's.")
    term

(* ----- keyspace flags (shared by cluster / load) -------------------------- *)

let keys_arg =
  Arg.(
    value & opt int 0
    & info [ "keys" ] ~docv:"K"
        ~doc:
          "Serve a keyspace of $(docv) independent registers (key ids \
           0..K-1, placed over the S servers by the deterministic shard \
           map) instead of the single register.  0, the default, keeps the \
           single-register path.")

let zipf_arg =
  Arg.(
    value & opt float 0.0
    & info [ "zipf" ] ~docv:"THETA"
        ~doc:
          "Zipfian key-popularity skew: key 0 is the hottest and rank r \
           falls off as 1/(r+1)^$(docv).  0 (default) draws keys \
           uniformly; YCSB's hot-spot regime is 0.99; values >= 1 (proper \
           Zipf, exact-CDF draws) concentrate even harder.  Only \
           meaningful with --keys.")

let write_ratio_arg =
  Arg.(
    value & opt float 0.05
    & info [ "write-ratio" ] ~docv:"F"
        ~doc:
          "Fraction of keyspace operations that are writes (default 0.05). \
           Only meaningful with --keys.")

let coalesce_arg =
  Arg.(
    value & opt ~vopt:64 int 0
    & info [ "coalesce" ] ~docv:"C"
        ~doc:
          "Coalesce reads: up to $(docv) reads invoked while a quorum \
           round's broadcast is still being assembled share that round \
           (per key in keyspace mode) and all adopt its result — \
           regularity-preserving piggyback batching.  0 (default) \
           disables coalescing; --coalesce with no value uses 64.")

let cluster_cmd =
  let readers_arg =
    Arg.(
      value & opt int 2
      & info [ "readers" ] ~docv:"R" ~doc:"Concurrent reader clients.")
  in
  let writes_arg =
    Arg.(
      value & opt int 3 & info [ "writes" ] ~docv:"N" ~doc:"Writes to run.")
  in
  let reads_arg =
    Arg.(
      value & opt int 10
      & info [ "reads" ] ~docv:"N" ~doc:"Reads per reader.")
  in
  let transport_arg =
    Arg.(
      value
      & opt (enum [ ("unix", `Unix); ("tcp", `Tcp) ]) `Unix
      & info [ "transport" ] ~docv:"KIND"
          ~doc:"Socket flavour: $(b,unix) (default) or $(b,tcp) loopback.")
  in
  let crash_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash" ] ~docv:"I"
          ~doc:
            "Crash the server for object $(docv) halfway through each \
             reader's reads and restart it near the end — operations must \
             keep completing (requires t >= 1).")
  in
  let inflight_arg =
    Arg.(
      value & opt int 0
      & info [ "inflight" ] ~docv:"W"
          ~doc:
            "Pipeline the reads through one multiplexed connection set with \
             an operation window of $(docv) in-flight reads (total reads = \
             readers x reads).  0, the default, runs one serial client per \
             reader.")
  in
  let fast_reads_arg =
    Arg.(
      value & flag
      & info [ "fast-reads" ]
          ~doc:
            "Run the §5.1 cached/suffix protocol ($(b,regular-gc) sized to \
             the actual reader count): readers cache the last returned \
             timestamp, objects ship history suffixes, and reads return \
             after round 1 whenever the candidate set already decides — \
             which the lower bound permits only at S >= 2t+2b+1; below it \
             every read falls back to the full two rounds.  Overrides \
             $(b,--protocol).")
  in
  let run protocol t b s readers writes reads transport crash inflight loop
      domains fast_reads keys zipf write_ratio coalesce seed copts jobs
      metrics artifacts =
    if inflight < 0 then begin
      Format.eprintf "robustread: --inflight %d must be >= 0@." inflight;
      exit 2
    end;
    if coalesce < 0 then begin
      Format.eprintf "robustread: --coalesce %d must be >= 0@." coalesce;
      exit 2
    end;
    let coalesce = max 1 coalesce in
    let protocol =
      if fast_reads then
        (* The mux allocates fresh reader ids past [readers]; unknown ids
           only make server-side pruning more conservative, never unsafe. *)
        Net.Protocols.regular_gc ~readers:(max 1 readers)
      else protocol
    in
    let cfg = config ~s ~t ~b () in
    (match crash with
    | Some i when i < 1 || i > cfg.Quorum.Config.s ->
        Format.eprintf "robustread: --crash %d out of range 1..%d@." i
          cfg.Quorum.Config.s;
        exit 2
    | Some _ when cfg.Quorum.Config.t < 1 ->
        Format.eprintf "robustread: --crash needs t >= 1@.";
        exit 2
    | _ -> ());
    let cluster =
      Net.Cluster.start ~metrics ~opts:copts ~transport ~loop ~domains
        ~protocol ~cfg ~readers ()
    in
    Format.printf "cluster of %a (%s) over %s sockets (%s loop): %d writes, \
                   %d readers x %d reads%s%s@."
      Quorum.Config.pp cfg
      (Net.Protocols.name protocol)
      (match transport with `Unix -> "unix" | `Tcp -> "tcp")
      (match loop with
      | `Threads -> "threads"
      | `Poll when domains > 1 -> Printf.sprintf "poll x%d domains" domains
      | `Poll -> "poll")
      writes readers reads
      (if inflight > 0 then Printf.sprintf " (pipelined, window %d)" inflight
       else "")
      (match crash with
      | Some i -> Printf.sprintf ", crashing object %d mid-run" i
      | None -> "");
    let failures = ref 0 in
    let fail_mutex = Mutex.create () in
    let record_failure msg =
      Mutex.lock fail_mutex;
      incr failures;
      Format.eprintf "%s@." msg;
      Mutex.unlock fail_mutex
    in
    if keys > 0 then begin
      (* Keyspace mode: one keyed client drives a zipfian read/write mix
         over [keys] registers; the single-register phases (and --crash)
         don't apply.  Histories are recorded per sampled key — each key
         is its own register, so the single-register checker runs per
         key. *)
      let map =
        Shard.Map.make_exn ~keys ~fleet:cfg.Quorum.Config.s ~cfg ()
      in
      let gen =
        Workload.Keyspace.make_exn ~skew:zipf ~write_ratio ~keys ~seed ()
      in
      let n = writes + (readers * reads) in
      let ops =
        Array.map
          (function
            | Workload.Keyspace.Read { key } -> Net.Client.Keyed.Read { key }
            | Workload.Keyspace.Write { key; value } ->
                Net.Client.Keyed.Write { key; value })
          (Workload.Keyspace.ops gen n)
      in
      let window = if inflight > 0 then inflight else 16 in
      (* Zipf puts the traffic on low key ids, so sampling a prefix of
         the id space checks the keys that actually saw concurrency. *)
      let sample k = k < 256 in
      Format.printf
        "keyspace: %s; %d ops (zipf %.2f, write ratio %.2f, window %d%s)@."
        (Shard.Map.to_string map) n zipf write_ratio window
        (if coalesce > 1 then Printf.sprintf ", coalesce %d" coalesce else "");
      Array.iteri
        (fun i -> function
          | Ok _ -> ()
          | Error e ->
              record_failure (Printf.sprintf "keyed op #%d FAILED: %s" (i + 1) e))
        (Net.Cluster.run_keyed ~inflight:window ~coalesce ~sample cluster ~map
           ops);
      let checked = Net.Cluster.keyed_histories cluster in
      let bad =
        List.fold_left
          (fun acc (key, h) ->
            let vs = Histories.Checks.check_safety ~equal:String.equal h in
            List.iter
              (fun v ->
                Format.printf "  key %d violation: %a@." key
                  (Histories.Checks.pp_violation
                     ~pp_value:Format.pp_print_string)
                  v)
              vs;
            acc + List.length vs)
          0 checked
      in
      let partition = Net.Cluster.partition_violations cluster in
      if partition > 0 then
        record_failure
          (Printf.sprintf
             "domain-partition violations: %d (an object was stepped outside \
              its owning domain)"
             partition);
      Format.printf
        "%d keys touched, %d sampled histories checked; safety: %s@."
        (Net.Cluster.keys_touched cluster)
        (List.length checked)
        (if bad = 0 then "OK" else Printf.sprintf "%d VIOLATIONS" bad);
      let registry = Net.Cluster.metrics cluster in
      (match registry with
      | Some reg ->
          Format.printf "--- metrics ---@.%s"
            (Stats.Table.to_string (Obs.Metrics.table reg))
      | None -> ());
      live_artifacts ~metrics ~artifacts ~spans:(Net.Cluster.spans cluster)
        registry;
      Net.Cluster.stop cluster;
      if !failures > 0 || bad > 0 then exit 1
    end
    else begin
    (* Writer runs in this thread; each reader client gets its own (the
       harness locks the shared history recorder).  --jobs 1 forces the
       fully sequential path. *)
    let sequential = jobs = Some 1 in
    let reader_body j () =
      for k = 1 to reads do
        (match crash with
        | Some i when j = 1 && k = ((reads / 2) + 1) ->
            if List.mem i (Net.Cluster.alive cluster) then begin
              Net.Cluster.crash cluster i;
              Format.printf "  crashed object %d (alive: %s)@." i
                (String.concat ","
                   (List.map string_of_int (Net.Cluster.alive cluster)))
            end
        | _ -> ());
        match Net.Cluster.read cluster ~reader:j with
        | Ok _ -> ()
        | Error e -> record_failure (Printf.sprintf "read r%d#%d FAILED: %s" j k e)
      done
    in
    for i = 1 to writes do
      match Net.Cluster.write cluster (Core.Value.v (Printf.sprintf "v%d" i)) with
      | Ok o -> print_outcome (Printf.sprintf "write(v%d)" i) o
      | Error e -> record_failure (Printf.sprintf "write v%d FAILED: %s" i e)
    done;
    if inflight > 0 then begin
      (* Pipelined mode: all reads flow through the mux's operation
         window.  A requested crash lands between two half-batches, the
         window-level analogue of "halfway through each reader". *)
      let run_pipelined n =
        if n > 0 then
          Array.iteri
            (fun k -> function
              | Ok _ -> ()
              | Error e ->
                  record_failure
                    (Printf.sprintf "pipelined read #%d FAILED: %s" (k + 1) e))
            (Net.Cluster.read_pipelined ~coalesce cluster ~inflight ~ops:n)
      in
      let total = readers * reads in
      let half = total / 2 in
      run_pipelined half;
      (match crash with
      | Some i when List.mem i (Net.Cluster.alive cluster) ->
          Net.Cluster.crash cluster i;
          Format.printf "  crashed object %d (alive: %s)@." i
            (String.concat ","
               (List.map string_of_int (Net.Cluster.alive cluster)))
      | _ -> ());
      run_pipelined (total - half)
    end
    else if sequential then
      for j = 1 to readers do
        reader_body j ()
      done
    else begin
      let threads =
        List.init readers (fun j -> Thread.create (reader_body (j + 1)) ())
      in
      List.iter Thread.join threads
    end;
    (match crash with
    | Some i when not (List.mem i (Net.Cluster.alive cluster)) ->
        (match Net.Cluster.restart cluster i with
        | Ok () -> ()
        | Error (`Still_alive i) ->
            record_failure
              (Printf.sprintf "restart raced: object %d still alive" i));
        Format.printf "  restarted object %d (alive: %s)@." i
          (String.concat ","
             (List.map string_of_int (Net.Cluster.alive cluster)));
        (* one more read with the recovered replica back in the quorum *)
        (match Net.Cluster.read cluster ~reader:1 with
        | Ok o -> print_outcome "read(post-restart)" o
        | Error e -> record_failure ("post-restart read FAILED: " ^ e))
    | _ -> ());
    let history = Net.Cluster.history cluster in
    let equal = String.equal in
    let safety = Histories.Checks.check_safety ~equal history in
    let partition = Net.Cluster.partition_violations cluster in
    if partition > 0 then
      record_failure
        (Printf.sprintf
           "domain-partition violations: %d (an object was stepped outside \
            its owning domain)"
           partition);
    let spans = Net.Cluster.spans cluster in
    let completed = List.length (List.filter Obs.Span.completed spans) in
    Format.printf "%d operations (%d spans completed); safety: %s@."
      (List.length history) completed
      (if safety = [] then "OK"
       else Printf.sprintf "%d VIOLATIONS" (List.length safety));
    List.iter
      (fun v ->
        Format.printf "  violation: %a@."
          (Histories.Checks.pp_violation ~pp_value:Format.pp_print_string)
          v)
      safety;
    let registry = Net.Cluster.metrics cluster in
    (match registry with
    | Some reg ->
        Format.printf "--- metrics ---@.%s"
          (Stats.Table.to_string (Obs.Metrics.table reg))
    | None -> ());
    live_artifacts ~metrics ~artifacts ~spans registry;
    Net.Cluster.stop cluster;
    if !failures > 0 || safety <> [] then exit 1
    end
  in
  let term =
    Term.(
      const run $ net_protocol_arg $ t_arg $ b_arg $ s_arg $ readers_arg
      $ writes_arg $ reads_arg $ transport_arg $ crash_arg $ inflight_arg
      $ loop_arg $ domains_arg $ fast_reads_arg $ keys_arg $ zipf_arg
      $ write_ratio_arg $ coalesce_arg $ seed_arg $ client_opts_args
      $ jobs_arg $ metrics_arg $ artifacts_arg)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Spin up a live loopback cluster (S servers + writer + readers in \
          one process), run a read/write workload over real sockets — \
          optionally crashing and restarting a server mid-run — then check \
          the recorded history and export spans/metrics.")
    term

(* ----- load: multi-process saturation driver ----------------------------- *)

(* The saturation workload needs more client-side parallelism than one
   process can generate (a mux is one thread; the GC and the select loop
   cap it).  'load' hosts the sharded server group and forks K worker
   processes of this same binary ('load-worker', hidden), each driving
   its own pipelined mux with a disjoint reader-id range; workers export
   their op.* registries as JSONL and the parent merges them with the
   per-object server registries into one report. *)

let first_reader_arg =
  Arg.(
    value & opt int 1
    & info [ "first-reader" ] ~docv:"J"
        ~doc:"First reader id of this worker's range (ids J..J+W-1).")

let ops_per_proc_arg =
  Arg.(
    value & opt int 200
    & info [ "ops"; "n" ] ~docv:"N" ~doc:"READ operations per worker process.")

let load_inflight_arg =
  Arg.(
    value & opt int 8
    & info [ "inflight" ] ~docv:"W"
        ~doc:"In-flight operation window (= reader slots) per worker process.")

let load_worker_cmd =
  let endpoints_arg =
    Arg.(
      value
      & opt_all endpoint_conv []
      & info [ "endpoint"; "e" ] ~docv:"EP"
          ~doc:"Base-object endpoints, in object order; repeat S times.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write this worker's metrics registry as JSONL to $(docv).")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"K"
          ~doc:"Total worker processes (for keyspace write partitioning).")
  in
  let worker_arg =
    Arg.(
      value & opt int 0
      & info [ "worker" ] ~docv:"I"
          ~doc:"This worker's 0-based index among --workers.")
  in
  let run protocol t b s endpoints inflight ops first_reader keys zipf
      write_ratio coalesce seed workers worker metrics_out copts =
    let coalesce = max 1 coalesce in
    let cfg = config ~s ~t ~b () in
    if List.length endpoints <> cfg.Quorum.Config.s then begin
      Format.eprintf
        "robustread: %d endpoints given but the configuration has S = %d \
         objects@."
        (List.length endpoints) cfg.Quorum.Config.s;
      exit 2
    end;
    if inflight < 1 || ops < 0 || first_reader < 1 then begin
      Format.eprintf "robustread: bad --inflight/--ops/--first-reader@.";
      exit 2
    end;
    if workers < 1 || worker < 0 || worker >= workers then begin
      Format.eprintf "robustread: bad --workers/--worker@.";
      exit 2
    end;
    let registry = Obs.Metrics.create () in
    let endpoints = Array.of_list endpoints in
    let t0 = Unix.gettimeofday () in
    let outcomes =
      if keys > 0 then begin
        (* Keyspace mode: a keyed client over the fleet, reading and
           writing a zipfian mix.  The registers are SWMR, so write
           ownership is partitioned across workers with the placement
           mixer: this worker only writes keys where
           mix(key) mod workers = worker; other write draws become
           reads (the key-popularity marginal is unchanged). *)
        let map =
          Shard.Map.make_exn ~keys ~fleet:cfg.Quorum.Config.s ~cfg ()
        in
        let gen =
          Workload.Keyspace.make_exn ~skew:zipf ~write_ratio
            ~write_filter:(fun k -> Shard.Map.mix k mod workers = worker)
            ~keys ~seed:(seed + worker) ()
        in
        let kops =
          Array.map
            (function
              | Workload.Keyspace.Read { key } -> Net.Client.Keyed.Read { key }
              | Workload.Keyspace.Write { key; value } ->
                  Net.Client.Keyed.Write { key; value })
            (Workload.Keyspace.ops gen ops)
        in
        let keyed =
          Net.Client.Keyed.connect ~metrics:registry ~opts:copts
            ~max_inflight:inflight ~reader:first_reader ~coalesce ~protocol
            ~map endpoints
        in
        let outcomes = Net.Client.Keyed.run_ops keyed kops in
        Net.Client.Keyed.close keyed;
        outcomes
      end
      else begin
        let mux =
          Net.Client.Mux.connect ~metrics:registry ~opts:copts
            ~max_inflight:inflight ~first_reader ~coalesce ~protocol ~cfg
            ~readers:inflight endpoints
        in
        let outcomes = Net.Client.Mux.run_reads mux ops in
        Net.Client.Mux.close mux;
        outcomes
      end
    in
    let wall = Unix.gettimeofday () -. t0 in
    let failures =
      Array.fold_left
        (fun n -> function Ok _ -> n | Error _ -> n + 1)
        0 outcomes
    in
    let ops_per_s = if wall > 0.0 then float_of_int ops /. wall else 0.0 in
    (* Per-worker throughput as a gauge: the parent reads each worker's
       file separately to report the max/min spread before merging
       (merged gauges keep only the max). *)
    Obs.Metrics.set_gauge registry "load.worker.ops_per_s" ops_per_s;
    (match metrics_out with
    | Some path ->
        Obs.Export.write_file ~path
          (Obs.Export.metrics_jsonl
             ~labels:[ ("proc_first_reader", string_of_int first_reader) ]
             registry)
    | None -> ());
    Format.printf "load-worker r%d..r%d: %d ops in %.3fs (%.0f ops/s), %d \
                   failed@."
      first_reader
      (first_reader + inflight - 1)
      ops wall ops_per_s failures;
    if failures > 0 then exit 1
  in
  let term =
    Term.(
      const run $ net_protocol_arg $ t_arg $ b_arg $ s_arg $ endpoints_arg
      $ load_inflight_arg $ ops_per_proc_arg $ first_reader_arg $ keys_arg
      $ zipf_arg $ write_ratio_arg $ coalesce_arg $ seed_arg $ workers_arg
      $ worker_arg $ metrics_out_arg $ client_opts_args)
  in
  Cmd.v
    (Cmd.info "load-worker" ~docs:Manpage.s_none
       ~doc:
         "(internal) One load-generator process: a pipelined mux with a \
          disjoint reader-id range, spawned by 'robustread load'.")
    term

let load_cmd =
  let procs_arg =
    Arg.(
      value & opt int 2
      & info [ "procs"; "k" ] ~docv:"K"
          ~doc:"Client worker processes to fork (disjoint reader-id ranges).")
  in
  let transport_arg =
    Arg.(
      value
      & opt (enum [ ("unix", `Unix); ("tcp", `Tcp) ]) `Unix
      & info [ "transport" ] ~docv:"KIND"
          ~doc:"Socket flavour: $(b,unix) (default) or $(b,tcp) loopback.")
  in
  let run protocol t b s domains procs inflight ops transport keys zipf
      write_ratio coalesce seed copts metrics artifacts =
    if procs < 1 || inflight < 1 || ops < 1 then begin
      Format.eprintf "robustread: --procs, --inflight and --ops must be >= 1@.";
      exit 2
    end;
    if coalesce < 0 then begin
      Format.eprintf "robustread: --coalesce %d must be >= 0@." coalesce;
      exit 2
    end;
    let cfg = config ~s ~t ~b () in
    let s = cfg.Quorum.Config.s in
    (* Private scratch dir for sockets and per-worker metric files. *)
    let dir =
      let path = Filename.temp_file "robustread-load" "" in
      Unix.unlink path;
      Unix.mkdir path 0o700;
      path
    in
    let endpoints =
      match transport with
      | `Unix ->
          Array.init s (fun i ->
              Net.Endpoint.Unix_sock
                (Filename.concat dir (Printf.sprintf "obj%d.sock" (i + 1))))
      | `Tcp ->
          Array.init s (fun _ ->
              Net.Endpoint.Tcp { host = "127.0.0.1"; port = 0 })
    in
    let registries = Array.init s (fun _ -> Obs.Metrics.create ()) in
    let servers =
      Net.Server.start_group
        ~metrics:(fun i -> registries.(i))
        ~domains ~protocol ~cfg endpoints
    in
    let actual = Array.map Net.Server.endpoint servers in
    (* Seed one write so every READ returns a real value.  In keyspace
       mode the workers own the writes (partitioned per key — the
       parent writing key 0 here would be a second writer on it). *)
    if keys = 0 then begin
      let writer =
        Net.Client.connect ~opts:copts ~protocol ~cfg ~role:`Writer actual
      in
      (match Net.Client.write writer (Core.Value.v "v1") with
      | Ok _ -> ()
      | Error e ->
          Format.eprintf "robustread: seed write failed: %s@." e;
          Net.Client.close writer;
          Array.iter Net.Server.stop servers;
          exit 1);
      Net.Client.close writer
    end;
    Format.printf
      "load: %a (%s) over %s sockets, %d worker domain(s); %d proc(s) x \
       window %d x %d ops%s@."
      Quorum.Config.pp cfg
      (Net.Protocols.name protocol)
      (match transport with `Unix -> "unix" | `Tcp -> "tcp")
      (max 1 (min domains s))
      procs inflight ops
      (if keys > 0 then
         Printf.sprintf "; keyspace of %d keys (zipf %.2f, write ratio %.2f%s)"
           keys zipf write_ratio
           (if coalesce > 1 then Printf.sprintf ", coalesce %d" coalesce
            else "")
       else "");
    Format.print_flush ();
    let metric_file k = Filename.concat dir (Printf.sprintf "proc%d.jsonl" k) in
    let ep_args =
      List.concat_map
        (fun ep -> [ "-e"; Net.Endpoint.to_string ep ])
        (Array.to_list actual)
    in
    let t0 = Unix.gettimeofday () in
    let pids =
      List.init procs (fun k ->
          let k = k + 1 in
          let argv =
            [
              Sys.executable_name; "load-worker";
              "-p"; Net.Protocols.name protocol;
              "-t"; string_of_int cfg.Quorum.Config.t;
              "-b"; string_of_int cfg.Quorum.Config.b;
              "-s"; string_of_int s;
              "--inflight"; string_of_int inflight;
              "--ops"; string_of_int ops;
              "--first-reader"; string_of_int (1 + ((k - 1) * inflight));
              "--keys"; string_of_int keys;
              "--zipf"; Printf.sprintf "%g" zipf;
              "--write-ratio"; Printf.sprintf "%g" write_ratio;
              "--coalesce"; string_of_int coalesce;
              "--seed"; string_of_int seed;
              "--workers"; string_of_int procs;
              "--worker"; string_of_int (k - 1);
              "--metrics-out"; metric_file k;
              "--deadline"; Printf.sprintf "%g" copts.Net.Client.deadline;
              "--retries"; string_of_int copts.Net.Client.retries;
              "--backoff"; Printf.sprintf "%g" copts.Net.Client.backoff;
            ]
            @ ep_args
          in
          Unix.create_process Sys.executable_name (Array.of_list argv)
            Unix.stdin Unix.stdout Unix.stderr)
    in
    let failed = ref 0 in
    List.iter
      (fun pid ->
        match snd (Unix.waitpid [] pid) with
        | Unix.WEXITED 0 -> ()
        | _ -> incr failed)
      pids;
    let wall = Unix.gettimeofday () -. t0 in
    Array.iter Net.Server.stop servers;
    let partition = Net.Server.partition_violations servers.(0) in
    (* Merge per-object server registries and per-process client JSONL
       exports into one registry: counters add, histograms merge. *)
    let merged = Obs.Metrics.create () in
    Array.iter (fun reg -> Obs.Metrics.merge_into ~dst:merged reg) registries;
    (* Each worker file is parsed into its own registry first: merged
       gauges keep only the max, and the per-worker ops/s spread needs
       every worker's value. *)
    let worker_rates = ref [] in
    for k = 1 to procs do
      let path = metric_file k in
      if Sys.file_exists path then begin
        let fresh = Obs.Metrics.create () in
        (match
           Obs.Export.metrics_of_jsonl ~into:fresh (Obs.Export.read_file path)
         with
        | Ok _ ->
            (match Obs.Metrics.gauge_value fresh "load.worker.ops_per_s" with
            | Some r when r > 0.0 -> worker_rates := (k, r) :: !worker_rates
            | _ -> ());
            Obs.Metrics.merge_into ~dst:merged fresh
        | Error e ->
            incr failed;
            Format.eprintf "robustread: bad metrics from worker %d: %s@." k e);
        Sys.remove path
      end
      else begin
        incr failed;
        Format.eprintf "robustread: worker %d left no metrics file@." k
      end
    done;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    let total = procs * ops in
    Format.printf
      "total: %d ops in %.3fs = %.0f ops/s (%d proc(s)); reads completed: %d; \
       partition violations: %d@."
      total wall
      (if wall > 0.0 then float_of_int total /. wall else 0.0)
      procs
      (Obs.Metrics.counter_value merged "op.read.completed")
      partition;
    (* Per-worker fairness: a spread ratio near 1 means no worker was
       starved by the shared server group. *)
    (match !worker_rates with
    | [] -> ()
    | rates ->
        let rs = List.map snd rates in
        let rmin = List.fold_left Float.min (List.hd rs) (List.tl rs) in
        let rmax = List.fold_left Float.max (List.hd rs) (List.tl rs) in
        Format.printf
          "per-worker ops/s: min %.0f, max %.0f, spread ratio %.2f@." rmin rmax
          (if rmin > 0.0 then rmax /. rmin else Float.infinity));
    if metrics then
      Format.printf "--- merged metrics ---@.%s"
        (Stats.Table.to_string (Obs.Metrics.table merged));
    (match artifacts with
    | None -> ()
    | Some dir ->
        write_artifacts ~dir
          [ ("metrics.jsonl", Obs.Export.metrics_jsonl merged) ]);
    if partition > 0 then begin
      Format.eprintf
        "robustread: %d domain-partition violations (an object was stepped \
         outside its owning domain)@."
        partition;
      exit 1
    end;
    if !failed > 0 then exit 1
  in
  let term =
    Term.(
      const run $ net_protocol_arg $ t_arg $ b_arg $ s_arg $ domains_arg
      $ procs_arg $ load_inflight_arg $ ops_per_proc_arg $ transport_arg
      $ keys_arg $ zipf_arg $ write_ratio_arg $ coalesce_arg $ seed_arg
      $ client_opts_args $ metrics_arg $ artifacts_arg)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Saturate a sharded poll server group: host all S objects across \
          --domains worker domains in this process, fork --procs client \
          processes each driving a pipelined read mux with a disjoint \
          reader-id range, then merge every registry (per-object server \
          metrics + per-process JSONL exports) into one ops/s and wire.* \
          report.  Exits nonzero on any worker failure or domain-partition \
          violation.")
    term

(* ----- main ------------------------------------------------------------------ *)

let () =
  let doc =
    "robust read/write storage over Byzantine base objects (Guerraoui & \
     Vukolic, PODC'06)"
  in
  let main =
    Cmd.group
      (Cmd.info "robustread" ~doc)
      [
        info_cmd;
        run_cmd;
        trace_cmd;
        lower_bound_cmd;
        check_cmd;
        walks_cmd;
        chaos_cmd;
        serve_cmd;
        client_cmd;
        cluster_cmd;
        load_cmd;
        load_worker_cmd;
      ]
  in
  exit (Cmd.eval main)
